// Bit-for-bit RunResult comparison helpers shared by the batch-engine
// parity suites (batch_runner_test.cpp, parallel_batch_test.cpp).
//
// The parity requirement across engines is exact: every counter, AMAT
// value and uniformity moment must be EQ — chunk boundaries, sharding and
// thread counts must not be observable in any output.
#pragma once

#include <gtest/gtest.h>

#include <vector>

#include "core/scheme.hpp"
#include "sim/runner.hpp"
#include "stats/moments.hpp"

namespace canu {

/// Every scheme family the paper evaluates (Figures 4 and 6), plus the
/// extension schemes, so a parity sweep covers each CacheModel subclass
/// and each AMAT formula branch.
inline std::vector<SchemeSpec> paper_parity_schemes() {
  return {
      SchemeSpec::baseline(),
      SchemeSpec::indexing(IndexScheme::kXor),
      SchemeSpec::indexing(IndexScheme::kOddMultiplier),
      SchemeSpec::indexing(IndexScheme::kPrimeModulo),
      SchemeSpec::indexing(IndexScheme::kGivargis),
      SchemeSpec::indexing(IndexScheme::kGivargisXor),
      SchemeSpec::column_associative(),
      SchemeSpec::adaptive_cache(),
      SchemeSpec::b_cache(),
      SchemeSpec::victim_cache(),
      SchemeSpec::partner_cache(),
      SchemeSpec::skewed_assoc(2),
      SchemeSpec::set_assoc(2),
  };
}

inline void expect_same_cache_stats(const CacheStats& a, const CacheStats& b) {
  EXPECT_EQ(a.accesses, b.accesses);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.primary_hits, b.primary_hits);
  EXPECT_EQ(a.secondary_hits, b.secondary_hits);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.swaps, b.swaps);
  EXPECT_EQ(a.lookup_cycles, b.lookup_cycles);
  EXPECT_EQ(a.write_accesses, b.write_accesses);
  EXPECT_EQ(a.writebacks, b.writebacks);
}

inline void expect_same_moments(const Moments& a, const Moments& b) {
  EXPECT_EQ(a.n, b.n);
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.variance, b.variance);
  EXPECT_EQ(a.stddev, b.stddev);
  EXPECT_EQ(a.skewness, b.skewness);
  EXPECT_EQ(a.kurtosis, b.kurtosis);
  EXPECT_EQ(a.excess_kurtosis, b.excess_kurtosis);
}

inline void expect_same_result(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.scheme, b.scheme);
  expect_same_cache_stats(a.l1, b.l1);
  expect_same_cache_stats(a.l2, b.l2);
  EXPECT_EQ(a.miss_penalty, b.miss_penalty);
  EXPECT_EQ(a.amat, b.amat);
  EXPECT_EQ(a.measured_amat, b.measured_amat);
  EXPECT_EQ(a.uniformity.sets, b.uniformity.sets);
  EXPECT_EQ(a.uniformity.fhs, b.uniformity.fhs);
  EXPECT_EQ(a.uniformity.fms, b.uniformity.fms);
  EXPECT_EQ(a.uniformity.las, b.uniformity.las);
  expect_same_moments(a.uniformity.access_moments, b.uniformity.access_moments);
  expect_same_moments(a.uniformity.hit_moments, b.uniformity.hit_moments);
  expect_same_moments(a.uniformity.miss_moments, b.uniformity.miss_moments);
}

}  // namespace canu
