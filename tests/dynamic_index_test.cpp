// Tests for DynamicIndexCache: shadow-directory decisions, switch
// hysteresis, flush cost accounting and the phase-adaptation win.
#include <gtest/gtest.h>

#include "assoc/dynamic_index.hpp"
#include "cache/set_assoc_cache.hpp"
#include "indexing/modulo.hpp"
#include "indexing/odd_multiplier.hpp"
#include "indexing/xor_index.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace canu {
namespace {

constexpr std::uint64_t kLine = 32;
constexpr std::uint64_t kCache = 32 * 1024;

std::vector<IndexFunctionPtr> two_candidates() {
  return {std::make_shared<ModuloIndex>(1024, 5),
          std::make_shared<OddMultiplierIndex>(1024, 5, 21)};
}

/// Strided pattern that thrashes modulo indexing (all lines alias set 0)
/// but spreads under odd-multiplier hashing.
Trace modulo_hostile(std::size_t n) {
  Trace t;
  for (std::size_t i = 0; i < n; ++i) {
    t.append((i % 64) * kCache, AccessType::kRead);
  }
  return t;
}

/// Uniform random pattern: both functions perform identically well.
Trace neutral(std::size_t n, std::uint64_t seed) {
  Trace t;
  Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    t.append(rng.below(900) * kLine, AccessType::kRead);  // fits the cache
  }
  return t;
}

TEST(DynamicIndex, ValidatesConfiguration) {
  EXPECT_THROW(DynamicIndexCache(CacheGeometry::paper_l1(), {}), Error);
  DynamicIndexConfig bad;
  bad.epoch_length = 10;
  EXPECT_THROW(
      DynamicIndexCache(CacheGeometry::paper_l1(), two_candidates(), bad),
      Error);
  EXPECT_THROW(DynamicIndexCache(CacheGeometry{kCache, kLine, 2},
                                 two_candidates()),
               Error);
}

TEST(DynamicIndex, StartsOnFirstCandidate) {
  DynamicIndexCache cache(CacheGeometry::paper_l1(), two_candidates());
  EXPECT_EQ(cache.current_candidate(), 0u);
  EXPECT_EQ(cache.switches(), 0u);
  EXPECT_EQ(cache.name(), "dynamic{modulo,odd_multiplier(21)}");
}

TEST(DynamicIndex, SwitchesAwayFromThrashingFunction) {
  DynamicIndexConfig cfg;
  cfg.epoch_length = 4096;
  DynamicIndexCache cache(CacheGeometry::paper_l1(), two_candidates(), cfg);
  const Trace t = modulo_hostile(40'000);
  for (const MemRef& r : t) cache.access(r.addr, r.type);
  EXPECT_EQ(cache.current_candidate(), 1u)
      << "must abandon modulo on an aliasing stream";
  EXPECT_GE(cache.switches(), 1u);
  // After adaptation the miss rate must approach the static odd-multiplier
  // result.
  SetAssocCache odd_static(CacheGeometry::paper_l1(),
                           std::make_shared<OddMultiplierIndex>(1024, 5, 21));
  for (const MemRef& r : t) odd_static.access(r.addr, r.type);
  EXPECT_LT(cache.stats().miss_rate(),
            odd_static.stats().miss_rate() + 0.15);
}

TEST(DynamicIndex, HysteresisPreventsSwitchOnNeutralTraffic) {
  DynamicIndexConfig cfg;
  cfg.epoch_length = 4096;
  cfg.hysteresis_pct = 10.0;
  DynamicIndexCache cache(CacheGeometry::paper_l1(), two_candidates(), cfg);
  const Trace t = neutral(200'000, 5);
  for (const MemRef& r : t) cache.access(r.addr, r.type);
  EXPECT_EQ(cache.switches(), 0u)
      << "noise must not trigger flush-costly switches";
}

TEST(DynamicIndex, SwitchFlushesAndChargesDirtyWritebacks) {
  DynamicIndexConfig cfg;
  cfg.epoch_length = 4096;
  DynamicIndexCache cache(CacheGeometry::paper_l1(), two_candidates(), cfg);
  // Dirty a resident line, then force a switch with hostile traffic.
  cache.access(900 * kLine, AccessType::kWrite);
  const Trace t = modulo_hostile(20'000);
  for (const MemRef& r : t) cache.access(r.addr, r.type);
  ASSERT_GE(cache.switches(), 1u);
  EXPECT_GE(cache.stats().writebacks, 1u)
      << "the flush must write back the dirty resident";
  // And the dirtied line was invalidated by the flush.
  const auto misses_before = cache.stats().misses;
  cache.access(900 * kLine, AccessType::kRead);
  EXPECT_EQ(cache.stats().misses, misses_before + 1);
}

TEST(DynamicIndex, AdaptsAcrossPhaseChange) {
  // Phase 1 thrashes modulo; phase 2 is a stream that thrashes the odd
  // multiplier less than it helps... construct: phase 2 hits mostly under
  // either function (neutral), so the right behaviour is: switch once in
  // phase 1, stay put in phase 2.
  DynamicIndexConfig cfg;
  cfg.epoch_length = 4096;
  DynamicIndexCache cache(CacheGeometry::paper_l1(), two_candidates(), cfg);
  Trace t = modulo_hostile(30'000);
  const Trace phase2 = neutral(100'000, 9);
  t.extend(phase2);
  for (const MemRef& r : t) cache.access(r.addr, r.type);
  EXPECT_EQ(cache.current_candidate(), 1u);
  EXPECT_LE(cache.switches(), 3u) << "no oscillation in the neutral phase";
}

TEST(DynamicIndex, BeatsBothStaticsOnAlternatingPhases) {
  // A workload whose optimal index function changes between phases: each
  // static choice thrashes one phase, the dynamic cache switches per phase
  // and beats both.
  auto odd_fn = std::make_shared<OddMultiplierIndex>(1024, 5, 21);

  // Phase A: lines aliasing set 0 under modulo (spread by odd-multiplier).
  // Phase B: addresses crafted so (21*T + I) mod 1024 == 0 — they alias
  // set 0 under the odd multiplier but spread under modulo.
  Trace t;
  for (int phase = 0; phase < 4; ++phase) {
    for (int i = 0; i < 60'000; ++i) {
      if (phase % 2 == 0) {
        t.append(static_cast<std::uint64_t>(i % 48) * kCache,
                 AccessType::kRead);
      } else {
        const std::uint64_t tag = static_cast<std::uint64_t>(i % 48) + 1;
        const std::uint64_t index_field = (1024 - (21 * tag) % 1024) % 1024;
        t.append((tag << 15) | (index_field << 5), AccessType::kRead);
      }
    }
  }

  DynamicIndexConfig cfg;
  cfg.epoch_length = 8192;
  DynamicIndexCache dynamic(CacheGeometry::paper_l1(),
                            {std::make_shared<ModuloIndex>(1024, 5), odd_fn},
                            cfg);
  SetAssocCache static_modulo(CacheGeometry::paper_l1());
  SetAssocCache static_odd(CacheGeometry::paper_l1(), odd_fn);
  for (const MemRef& r : t) {
    dynamic.access(r.addr, r.type);
    static_modulo.access(r.addr, r.type);
    static_odd.access(r.addr, r.type);
  }
  // Sanity: each static really thrashes its bad phases.
  EXPECT_GT(static_modulo.stats().misses, 100'000u);
  EXPECT_GT(static_odd.stats().misses, 100'000u);
  // The dynamic cache pays one epoch + flush per phase change and wins.
  EXPECT_LT(dynamic.stats().misses * 2, static_modulo.stats().misses);
  EXPECT_LT(dynamic.stats().misses * 2, static_odd.stats().misses);
  EXPECT_GE(dynamic.switches(), 3u);
}

TEST(DynamicIndex, StatsInvariants) {
  DynamicIndexCache cache(CacheGeometry::paper_l1(), two_candidates());
  const Trace t = neutral(80'000, 13);
  for (const MemRef& r : t) cache.access(r.addr, r.type);
  EXPECT_EQ(cache.stats().accesses, t.size());
  EXPECT_EQ(cache.stats().hits + cache.stats().misses, t.size());
  std::uint64_t per_set = 0;
  for (const SetStats& s : cache.set_stats()) per_set += s.accesses;
  EXPECT_EQ(per_set, t.size());
}

}  // namespace
}  // namespace canu
