// Tests for the virtual-to-physical page mapper and trace rewriting.
#include <set>

#include <gtest/gtest.h>

#include "trace/page_mapping.hpp"
#include "util/error.hpp"
#include "workloads/workload.hpp"

namespace canu {
namespace {

TEST(PageMapper, IdentityIsTransparent) {
  PageMapper mapper;
  for (std::uint64_t a : {0ull, 4095ull, 4096ull, 0x1234'5678ull}) {
    EXPECT_EQ(mapper.translate(a), a);
  }
}

TEST(PageMapper, OffsetPreservedUnderEveryPolicy) {
  for (const PagePolicy policy :
       {PagePolicy::kIdentity, PagePolicy::kRandom, PagePolicy::kColored}) {
    PageMapper::Options opt;
    opt.policy = policy;
    PageMapper mapper(opt);
    for (std::uint64_t a = 0x10000; a < 0x10000 + 3 * 4096; a += 777) {
      EXPECT_EQ(mapper.translate(a) & 4095, a & 4095)
          << page_policy_name(policy);
    }
  }
}

TEST(PageMapper, MappingIsStablePerPage) {
  PageMapper::Options opt;
  opt.policy = PagePolicy::kRandom;
  PageMapper mapper(opt);
  const std::uint64_t first = mapper.translate(0x40'0000);
  EXPECT_EQ(mapper.translate(0x40'0000 + 100), first + 100);
  EXPECT_EQ(mapper.translate(0x40'0000), first);
  EXPECT_EQ(mapper.pages_mapped(), 1u);
}

TEST(PageMapper, DistinctPagesGetDistinctFrames) {
  for (const PagePolicy policy : {PagePolicy::kRandom, PagePolicy::kColored}) {
    PageMapper::Options opt;
    opt.policy = policy;
    PageMapper mapper(opt);
    std::set<std::uint64_t> frames;
    for (std::uint64_t p = 0; p < 500; ++p) {
      frames.insert(mapper.translate(p * 4096) >> 12);
    }
    EXPECT_EQ(frames.size(), 500u) << page_policy_name(policy);
  }
}

TEST(PageMapper, ColoredPreservesVirtualColor) {
  PageMapper::Options opt;
  opt.policy = PagePolicy::kColored;
  opt.colors = 8;
  PageMapper mapper(opt);
  for (std::uint64_t p = 0; p < 256; ++p) {
    const std::uint64_t frame = mapper.translate(p * 4096) >> 12;
    EXPECT_EQ(frame % 8, p % 8) << "page " << p;
  }
}

TEST(PageMapper, RandomIsSeedDeterministic) {
  PageMapper::Options opt;
  opt.policy = PagePolicy::kRandom;
  PageMapper m1(opt), m2(opt);
  for (std::uint64_t p = 0; p < 100; ++p) {
    EXPECT_EQ(m1.translate(p * 4096), m2.translate(p * 4096));
  }
  opt.seed = 99;
  PageMapper m3(opt);
  bool any_differs = false;
  for (std::uint64_t p = 0; p < 100; ++p) {
    if (m3.translate(p * 4096) != m1.translate(p * 4096)) any_differs = true;
  }
  EXPECT_TRUE(any_differs);
}

TEST(PageMapper, ValidatesOptions) {
  PageMapper::Options bad;
  bad.page_size = 1000;
  EXPECT_THROW(PageMapper{bad}, Error);
  PageMapper::Options bad2;
  bad2.colors = 3;
  EXPECT_THROW(PageMapper{bad2}, Error);
}

TEST(ApplyPageMapping, RewritesWholeTrace) {
  WorkloadParams p;
  p.scale = 0.125;
  const Trace v = generate_workload("crc", p);
  PageMapper::Options opt;
  opt.policy = PagePolicy::kColored;
  const Trace phys = apply_page_mapping(v, opt);
  ASSERT_EQ(phys.size(), v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    ASSERT_EQ(phys[i].type, v[i].type);
    ASSERT_EQ(phys[i].addr & 4095, v[i].addr & 4095);
  }
  EXPECT_NE(phys.name().find("colored"), std::string::npos);
}

TEST(ApplyPageMapping, IdentityIsNoOpOnAddresses) {
  WorkloadParams p;
  p.scale = 0.125;
  const Trace v = generate_workload("sha", p);
  const Trace phys = apply_page_mapping(v, PageMapper::Options{});
  EXPECT_EQ(phys, v);
}

}  // namespace
}  // namespace canu
