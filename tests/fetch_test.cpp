// Tests for the instruction-fetch generator and the split L1I/L1D
// hierarchy.
#include <gtest/gtest.h>

#include "cache/set_assoc_cache.hpp"
#include "cache/split_hierarchy.hpp"
#include "trace/fetch_gen.hpp"
#include "trace/trace_stats.hpp"
#include "stats/uniformity.hpp"
#include "util/error.hpp"

namespace canu {
namespace {

// ---------------------------------------------------------- fetch gen ----

TEST(FetchGen, ProducesRequestedLengthOfFetches) {
  FetchParams p;
  p.length = 50'000;
  const Trace t = generate_fetch_trace(p);
  EXPECT_EQ(t.size(), 50'000u);
  for (const MemRef& r : t) {
    ASSERT_EQ(r.type, AccessType::kFetch);
    ASSERT_GE(r.addr, p.code_base);
  }
}

TEST(FetchGen, Deterministic) {
  FetchParams p;
  p.length = 30'000;
  EXPECT_EQ(generate_fetch_trace(p), generate_fetch_trace(p));
  FetchParams p2 = p;
  p2.seed = 42;
  EXPECT_NE(generate_fetch_trace(p), generate_fetch_trace(p2));
}

TEST(FetchGen, MostlySequentialWithinBlocks) {
  FetchParams p;
  p.length = 100'000;
  const Trace t = generate_fetch_trace(p);
  const TraceStats s = compute_trace_stats(t, 32);
  // The dominant inter-reference stride of an instruction stream is the
  // instruction size.
  ASSERT_FALSE(s.top_strides.empty());
  EXPECT_EQ(s.top_strides[0].stride, 4);
  EXPECT_GT(s.top_strides[0].count, t.size() / 2);
}

TEST(FetchGen, CodeFootprintBounded) {
  FetchParams p;
  p.length = 200'000;
  const Trace t = generate_fetch_trace(p);
  const TraceStats s = compute_trace_stats(t, 32);
  // 96 functions x ~7 blocks x ~7.5 insns x 4 B ~= 200 KB ceiling.
  EXPECT_LT(s.footprint_bytes, 512 * 1024u);
  EXPECT_GT(s.unique_lines, 100u);
  // Heavy reuse: the trace revisits the image many times over.
  EXPECT_GT(s.total, s.unique_addresses * 3);
}

TEST(FetchGen, InstructionStreamsAreCacheFriendly) {
  // The motivation for split caches: I-streams hit far better than the
  // D-streams of the same size class in a 32 KB direct-mapped cache.
  FetchParams p;
  p.length = 400'000;
  const Trace t = generate_fetch_trace(p);
  SetAssocCache icache(CacheGeometry::paper_l1());
  for (const MemRef& r : t) icache.access(r.addr, r.type);
  EXPECT_LT(icache.stats().miss_rate(), 0.05);
}

TEST(FetchGen, ValidatesParams) {
  FetchParams p;
  p.functions = 0;
  EXPECT_THROW(generate_fetch_trace(p), Error);
  FetchParams p2;
  p2.hot_functions = 1000;
  EXPECT_THROW(generate_fetch_trace(p2), Error);
}

// -------------------------------------------------------------- merge ----

TEST(MergeFetchData, InterleavesAtRequestedRatio) {
  Trace fetch("f"), data("d");
  for (int i = 0; i < 9; ++i) {
    fetch.append(0x400000 + static_cast<std::uint64_t>(i) * 4,
                 AccessType::kFetch);
  }
  for (int i = 0; i < 3; ++i) {
    data.append(0x1000 + static_cast<std::uint64_t>(i) * 8,
                AccessType::kRead);
  }
  const Trace merged = merge_fetch_data(fetch, data, 3);
  ASSERT_EQ(merged.size(), 12u);
  // Pattern: F F F D F F F D F F F D.
  for (std::size_t i = 0; i < merged.size(); ++i) {
    const bool expect_fetch = (i % 4) != 3;
    EXPECT_EQ(merged[i].type == AccessType::kFetch, expect_fetch) << i;
  }
}

TEST(MergeFetchData, DrainsLongerStream) {
  Trace fetch("f"), data("d");
  fetch.append(0x400000, AccessType::kFetch);
  for (int i = 0; i < 5; ++i) {
    data.append(static_cast<std::uint64_t>(i) * 32, AccessType::kRead);
  }
  const Trace merged = merge_fetch_data(fetch, data, 3);
  EXPECT_EQ(merged.size(), 6u);
}

// ---------------------------------------------------- split hierarchy ----

TEST(SplitHierarchy, RoutesByAccessType) {
  SetAssocCache l1i(CacheGeometry::paper_l1());
  SetAssocCache l1d(CacheGeometry::paper_l1());
  SplitHierarchy h(l1i, l1d, CacheGeometry::paper_l2());

  h.access(0x400000, AccessType::kFetch);
  h.access(0x400000, AccessType::kFetch);
  h.access(0x1000, AccessType::kRead);
  h.access(0x2000, AccessType::kWrite);

  EXPECT_EQ(l1i.stats().accesses, 2u);
  EXPECT_EQ(l1d.stats().accesses, 2u);
  EXPECT_EQ(h.result().l2.accesses, 3u);  // 1 I-miss + 2 D-misses
}

TEST(SplitHierarchy, SharedL2SeesBothStreams) {
  FetchParams fp;
  fp.length = 60'000;
  const Trace fetch = generate_fetch_trace(fp);
  Trace data("d");
  for (int i = 0; i < 20'000; ++i) {
    data.append(static_cast<std::uint64_t>(i % 3000) * 32, AccessType::kRead);
  }
  const Trace merged = merge_fetch_data(fetch, data, 3);

  SetAssocCache l1i(CacheGeometry::paper_l1());
  SetAssocCache l1d(CacheGeometry::paper_l1());
  SplitHierarchy h(l1i, l1d, CacheGeometry::paper_l2());
  const SplitHierarchyResult res = h.run(merged);

  EXPECT_EQ(res.references, merged.size());
  EXPECT_EQ(res.l1i.accesses + res.l1d.accesses, merged.size());
  EXPECT_EQ(res.l2.accesses, res.l1i.misses + res.l1d.misses);
  EXPECT_GT(res.measured_amat(), 1.0);
  // I-side must be much more uniform than the D-side for this loopy code.
  EXPECT_LT(res.l1i.miss_rate(), res.l1d.miss_rate());
}

TEST(SplitHierarchy, FlushResets) {
  SetAssocCache l1i(CacheGeometry::paper_l1());
  SetAssocCache l1d(CacheGeometry::paper_l1());
  SplitHierarchy h(l1i, l1d, CacheGeometry::paper_l2());
  h.access(0x400000, AccessType::kFetch);
  h.flush();
  EXPECT_EQ(h.result().references, 0u);
  EXPECT_EQ(l1i.stats().accesses, 0u);
}

}  // namespace
}  // namespace canu
