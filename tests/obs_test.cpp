// Tests for src/obs (DESIGN.md §10): the observability layer must be
// invisible in every simulation output — EvalReports are bit-for-bit
// identical with metrics/spans on or off at any thread count — while the
// artifacts it produces (trace-event JSON, run manifest) must be valid,
// well-nested and round-trippable.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/evaluator.hpp"
#include "core/scheme.hpp"
#include "obs/json.hpp"
#include "obs/manifest.hpp"
#include "obs/obs.hpp"
#include "result_matchers.hpp"
#include "util/cli_flags.hpp"
#include "util/error.hpp"

namespace canu {
namespace {

namespace fs = std::filesystem;

/// Install an observability session for one test, tearing it down on every
/// exit path so later tests start clean.
class ScopedSession {
 public:
  explicit ScopedSession(obs::SessionOptions options)
      : session_(obs::Session::install(options)) {}
  ~ScopedSession() { obs::Session::uninstall(); }
  ScopedSession(const ScopedSession&) = delete;
  ScopedSession& operator=(const ScopedSession&) = delete;

  obs::Session* operator->() const noexcept { return session_; }
  obs::Session& operator*() const noexcept { return *session_; }

 private:
  obs::Session* session_;
};

std::vector<unsigned> parity_thread_counts() {
  return {1u, 2u, std::max(1u, std::thread::hardware_concurrency())};
}

EvalReport evaluate_paper_schemes(unsigned threads) {
  EvalOptions opt;
  opt.params.scale = 0.125;
  opt.threads = threads;
  Evaluator ev(opt);
  // Skip element 0: paper_parity_schemes() leads with the baseline, which
  // the Evaluator always runs anyway.
  const std::vector<SchemeSpec> schemes = paper_parity_schemes();
  for (std::size_t i = 1; i < schemes.size(); ++i) ev.add_scheme(schemes[i]);
  return ev.evaluate({"crc", "bitcount"});
}

void expect_same_report(const EvalReport& a, const EvalReport& b) {
  ASSERT_EQ(a.workloads, b.workloads);
  ASSERT_EQ(a.scheme_labels, b.scheme_labels);
  for (const auto& [name, run] : a.baseline_runs) {
    const auto it = b.baseline_runs.find(name);
    ASSERT_NE(it, b.baseline_runs.end()) << name;
    expect_same_result(run, it->second);
  }
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (const auto& [key, cell] : a.cells) {
    const EvalCell* other = b.cell(key.first, key.second);
    ASSERT_NE(other, nullptr) << key.first << " / " << key.second;
    expect_same_result(cell.run, other->run);
    EXPECT_EQ(cell.miss_reduction_pct, other->miss_reduction_pct);
    EXPECT_EQ(cell.amat_reduction_pct, other->amat_reduction_pct);
  }
}

// ------------------------------------------------------------- parity ----

// The acceptance bar for the whole layer: every paper scheme, at the serial
// engine, a small pool and the full hardware pool, produces bit-for-bit the
// same EvalReport whether or not metrics + spans are being recorded.
TEST(ObsParity, ReportsIdenticalWithMetricsAndSpansOn) {
  for (const unsigned threads : parity_thread_counts()) {
    const EvalReport off = evaluate_paper_schemes(threads);
    EvalReport on;
    {
      ScopedSession session(obs::SessionOptions{true, true});
      on = evaluate_paper_schemes(threads);
    }
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_same_report(off, on);
  }
}

TEST(ObsParity, HelpersAreInertWithoutSession) {
  EXPECT_FALSE(obs::metrics_on());
  EXPECT_FALSE(obs::spans_on());
  EXPECT_EQ(obs::now_ns(), 0u);
  obs::count(obs::Counter::kChunksProduced);       // must not crash
  obs::observe(obs::Hist::kChunkReplayNs, 42);     // must not crash
  obs::Span span("test", "no session");
}

TEST(ObsSession, SecondInstallThrows) {
  ScopedSession session(obs::SessionOptions{});
  EXPECT_THROW(obs::Session::install(obs::SessionOptions{}), Error);
}

// -------------------------------------------------------- trace events ----

// Spans grouped by track must be start-sorted and properly nested — that is
// what makes the file loadable as a flame chart in Perfetto/chrome://tracing.
TEST(ObsTraceEvents, ValidJsonWithNestedMonotonicTracks) {
  std::ostringstream os;
  {
    ScopedSession session(obs::SessionOptions{true, true});
    evaluate_paper_schemes(2);
    session->write_trace_events(os);
  }

  const obs::JsonValue doc = obs::JsonValue::parse(os.str());
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ns");
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_FALSE(events.empty());

  std::set<std::string> categories;
  std::map<std::uint64_t, std::vector<std::pair<double, double>>> tracks;
  for (const obs::JsonValue& ev : events) {
    const std::string& ph = ev.at("ph").as_string();
    if (ph == "M") {
      EXPECT_TRUE(ev.at("name").as_string() == "process_name" ||
                  ev.at("name").as_string() == "thread_name");
      continue;
    }
    ASSERT_EQ(ph, "X");
    EXPECT_EQ(ev.at("pid").as_u64(), 1u);
    EXPECT_FALSE(ev.at("name").as_string().empty());
    categories.insert(ev.at("cat").as_string());
    tracks[ev.at("tid").as_u64()].emplace_back(ev.at("ts").as_number(),
                                               ev.at("dur").as_number());
  }
  // The evaluation exercises the workload, generation and replay spans.
  EXPECT_TRUE(categories.count("evaluate"));
  EXPECT_TRUE(categories.count("replay"));
  EXPECT_TRUE(categories.count("generate"));

  constexpr double kSlackUs = 1e-6;
  for (const auto& [tid, spans] : tracks) {
    SCOPED_TRACE("tid=" + std::to_string(tid));
    std::vector<double> open_ends;  // stack of enclosing spans' end times
    double prev_ts = -1.0;
    for (const auto& [ts, dur] : spans) {
      EXPECT_GE(ts, prev_ts) << "track not start-sorted";
      prev_ts = ts;
      while (!open_ends.empty() && ts >= open_ends.back() - kSlackUs) {
        open_ends.pop_back();
      }
      if (!open_ends.empty()) {
        EXPECT_LE(ts + dur, open_ends.back() + kSlackUs)
            << "span overlaps its enclosing span instead of nesting";
      }
      open_ends.push_back(ts + dur);
    }
  }
}

// ----------------------------------------------------------- manifest ----

TEST(ObsManifest, RoundTripsConfigTimingsAndCounters) {
  const fs::path cache_dir =
      fs::temp_directory_path() / "canu_obs_test_trace_cache";
  fs::remove_all(cache_dir);
  fs::create_directories(cache_dir);

  std::ostringstream os;
  {
    ScopedSession session(obs::SessionOptions{true, false});
    session->set_command("obs_test evaluate");

    EvalOptions opt;
    opt.params.scale = 0.125;
    opt.params.seed = 7;
    opt.threads = 2;
    opt.trace_cache_dir = cache_dir.string();
    Evaluator ev(opt);
    ev.add_scheme(SchemeSpec::indexing(IndexScheme::kXor));
    ev.add_scheme(SchemeSpec::column_associative());
    ev.evaluate({"crc"});

    obs::write_manifest(*session, os);
  }
  fs::remove_all(cache_dir);

  const obs::RunManifest m = obs::read_manifest(os.str());
  EXPECT_FALSE(m.version.empty());
  EXPECT_EQ(m.command, "obs_test evaluate");
  EXPECT_GE(m.wall_s, 0.0);

  // The options block records the exact EvalOptions the run used.
  EXPECT_EQ(m.options.seed, 7u);
  EXPECT_DOUBLE_EQ(m.options.scale, 0.125);
  EXPECT_EQ(m.options.threads, 2u);
  EXPECT_EQ(m.options.baseline, "direct[modulo]");
  EXPECT_EQ(m.options.trace_cache_dir, cache_dir.string());
  EXPECT_EQ(m.options.l1_geometry, "32768B/32B-line/1-way");
  EXPECT_EQ(m.options.workloads, std::vector<std::string>{"crc"});
  const std::vector<std::string> expected_schemes = {"direct[xor]",
                                                     "column_assoc[modulo]"};
  EXPECT_EQ(m.options.schemes, expected_schemes);

  // Per-workload timing breakdown: baseline first, then each scheme.
  ASSERT_EQ(m.workloads.size(), 1u);
  EXPECT_EQ(m.workloads[0].name, "crc");
  EXPECT_GE(m.workloads[0].wall_s, 0.0);
  ASSERT_EQ(m.workloads[0].runs.size(), 3u);
  EXPECT_EQ(m.workloads[0].runs[0].scheme, "direct[modulo]");
  EXPECT_GT(m.workloads[0].runs[0].l1_accesses, 0u);
  EXPECT_GT(m.workloads[0].runs[0].amat, 0.0);

  // Aggregated counters: generation, evaluation, cache traffic and the
  // trace-cache store of the cold run must all be visible.
  EXPECT_EQ(m.counters.at("workloads_evaluated"), 1u);
  EXPECT_GT(m.counters.at("trace_records_generated"), 0u);
  EXPECT_GT(m.counters.at("l1_accesses"), 0u);
  EXPECT_GT(m.counters.at("l1_misses"), 0u);
  EXPECT_GT(m.counters.at("trace_cache_stores"), 0u);
  EXPECT_GT(m.counters.at("trace_cache_bytes_written"), 0u);
  EXPECT_GT(m.counters.at("pool_tasks_executed"), 0u);

  // Histogram summaries carry count/sum/mean.
  const auto& replay = m.histograms.at("chunk_replay_ns");
  EXPECT_GT(replay.count, 0u);
  EXPECT_GE(replay.mean, 0.0);
}

TEST(ObsManifest, ReadRejectsMalformedInput) {
  EXPECT_THROW(obs::read_manifest("not json"), Error);
  EXPECT_THROW(obs::read_manifest("[]"), Error);
}

// --------------------------------------------------------------- json ----

TEST(ObsJson, ParseRoundTripsTypes) {
  const obs::JsonValue v = obs::JsonValue::parse(
      R"({"a": [1, 2.5, "x\nü", true, null], "b": {"c": -3}})");
  const auto& a = v.at("a").as_array();
  ASSERT_EQ(a.size(), 5u);
  EXPECT_EQ(a[0].as_u64(), 1u);
  EXPECT_DOUBLE_EQ(a[1].as_number(), 2.5);
  EXPECT_EQ(a[2].as_string(), "x\n\xc3\xbc");
  EXPECT_TRUE(a[3].as_bool());
  EXPECT_TRUE(a[4].is_null());
  EXPECT_DOUBLE_EQ(v.at("b").at("c").as_number(), -3.0);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(ObsJson, ParseRejectsMalformed) {
  EXPECT_THROW(obs::JsonValue::parse("{"), Error);
  EXPECT_THROW(obs::JsonValue::parse("{} trailing"), Error);
  EXPECT_THROW(obs::JsonValue::parse(R"("bad \q escape")"), Error);
  EXPECT_THROW(obs::JsonValue::parse("[1,]"), Error);
}

TEST(ObsJson, QuoteEscapesControlCharacters) {
  EXPECT_EQ(obs::json_quote("a\"b\\c\n"), R"("a\"b\\c\n")");
  EXPECT_EQ(obs::json_quote(std::string("\x01", 1)), "\"\\u0001\"");
}

TEST(ObsJson, WriterMatchesParser) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.kv("n", std::uint64_t{18446744073709551615ull});
  w.kv("d", 0.5);
  w.kv("s", "hi");
  w.key("arr");
  w.begin_array();
  w.value(true);
  w.value(1);
  w.end_array();
  w.end_object();

  const obs::JsonValue v = obs::JsonValue::parse(os.str());
  // 2^64-1 is not exactly representable as a double; the writer emits the
  // integer digits, so only smaller counters survive as_u64 — spot-check
  // the representable fields.
  EXPECT_DOUBLE_EQ(v.at("d").as_number(), 0.5);
  EXPECT_EQ(v.at("s").as_string(), "hi");
  EXPECT_TRUE(v.at("arr").as_array()[0].as_bool());
  EXPECT_EQ(v.at("arr").as_array()[1].as_u64(), 1u);
}

// ---------------------------------------------------------- histograms ----

TEST(ObsHistogram, BucketsByBitWidth) {
  obs::HistogramData h;
  h.record(0);     // bit_width 0
  h.record(1);     // bit_width 1
  h.record(1024);  // bit_width 11
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[1], 1u);
  EXPECT_EQ(h.buckets[11], 1u);
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.sum, 1025u);
  EXPECT_DOUBLE_EQ(h.mean(), 1025.0 / 3.0);

  obs::HistogramData other;
  other.record(3);
  h.merge(other);
  EXPECT_EQ(h.count, 4u);
  EXPECT_EQ(h.buckets[2], 1u);
}

TEST(ObsNames, CounterAndHistNamesAreUniqueSnakeCase) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < obs::kCounterCount; ++i) {
    const std::string name =
        obs::counter_name(static_cast<obs::Counter>(i));
    EXPECT_FALSE(name.empty());
    for (const char ch : name) {
      EXPECT_TRUE((ch >= 'a' && ch <= 'z') || (ch >= '0' && ch <= '9') ||
                  ch == '_')
          << name;
    }
    names.insert(name);
  }
  EXPECT_EQ(names.size(), obs::kCounterCount);
  EXPECT_NE(obs::hist_name(obs::Hist::kChunkReplayNs),
            obs::hist_name(obs::Hist::kPoolQueueWaitNs));
}

// ----------------------------------------------------------- cli flags ----

TEST(CliFlags, FlagValueMatchesOnlyEqualsForm) {
  std::string value;
  EXPECT_TRUE(flag_value("--seed=42", "--seed", &value));
  EXPECT_EQ(value, "42");
  EXPECT_TRUE(flag_value("--seed=", "--seed", &value));
  EXPECT_EQ(value, "");
  EXPECT_FALSE(flag_value("--seed", "--seed", &value));
  EXPECT_FALSE(flag_value("--seeds=1", "--seed", &value));
}

TEST(CliFlags, ParsersRejectGarbage) {
  std::string error;
  EXPECT_EQ(parse_thread_count("0", &error), std::nullopt);
  EXPECT_EQ(parse_thread_count("4096", &error), std::nullopt);
  EXPECT_EQ(parse_thread_count("two", &error), std::nullopt);
  EXPECT_EQ(parse_thread_count("8", &error), 8u);

  EXPECT_EQ(parse_positive_double("0", "scale", &error), std::nullopt);
  EXPECT_EQ(parse_positive_double("-1", "scale", &error), std::nullopt);
  EXPECT_EQ(parse_positive_double("0.25", "scale", &error), 0.25);

  EXPECT_EQ(parse_u64("-3", "seed", &error), std::nullopt);
  EXPECT_EQ(parse_u64("12x", "seed", &error), std::nullopt);
  EXPECT_EQ(parse_u64("12", "seed", &error), 12u);
}

// ----------------------------------------------------------- progress ----

TEST(ObsProgress, ForcedPrinterIsCallable) {
  const obs::ProgressFn fn = obs::make_progress_printer(true);
  ASSERT_TRUE(fn);
  fn(1, 2, "crc");  // must not crash; writes one heartbeat line to stderr
}

}  // namespace
}  // namespace canu
