// Tests for the delta-compressed trace format (CANUTRC2): round-trips,
// compression effectiveness, cross-format loading, and robustness.
#include <sstream>

#include <gtest/gtest.h>

#include "trace/trace_io.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "workloads/workload.hpp"

namespace canu {
namespace {

TEST(CompressedTrace, RoundTripSmall) {
  Trace t("small");
  t.append(0x1000, AccessType::kRead);
  t.append(0x1004, AccessType::kWrite);
  t.append(0x0800, AccessType::kFetch);  // negative delta
  t.append(0x0800, AccessType::kRead);   // zero delta (0 payload bytes)
  t.append(0xffff'ffff'0000'0000ULL, AccessType::kRead);  // huge delta

  std::stringstream ss;
  write_trace_compressed(t, ss);
  const Trace back = read_trace_any(ss);
  EXPECT_EQ(back, t);
  EXPECT_EQ(back.name(), "small");
}

TEST(CompressedTrace, EmptyTrace) {
  Trace t("empty");
  std::stringstream ss;
  write_trace_compressed(t, ss);
  EXPECT_TRUE(read_trace_any(ss).empty());
}

TEST(CompressedTrace, ReadAnyHandlesBothFormats) {
  Trace t("both");
  Xoshiro256 rng(1);
  for (int i = 0; i < 1000; ++i) {
    t.append(rng.below(1 << 24), AccessType::kRead);
  }
  std::stringstream raw, packed;
  write_trace_binary(t, raw);
  write_trace_compressed(t, packed);
  EXPECT_EQ(read_trace_any(raw), t);
  EXPECT_EQ(read_trace_any(packed), t);
}

TEST(CompressedTrace, RejectsUnknownMagic) {
  std::stringstream ss;
  ss << "CANUTRC9........";
  EXPECT_THROW(read_trace_any(ss), Error);
}

TEST(CompressedTrace, RejectsTruncation) {
  Trace t("trunc");
  for (int i = 0; i < 100; ++i) {
    t.append(static_cast<std::uint64_t>(i) * 4096, AccessType::kRead);
  }
  std::stringstream ss;
  write_trace_compressed(t, ss);
  std::string data = ss.str();
  data.resize(data.size() - 2);
  std::stringstream truncated(data);
  EXPECT_THROW(read_trace_any(truncated), Error);
}

TEST(CompressedTrace, SequentialStreamShrinksHard) {
  Trace t("seq");
  for (int i = 0; i < 10'000; ++i) {
    t.append(0x1000'0000 + static_cast<std::uint64_t>(i) * 4,
             AccessType::kFetch);
  }
  std::stringstream raw, packed;
  write_trace_binary(t, raw);
  write_trace_compressed(t, packed);
  // Raw: 9 bytes/record. Sequential deltas: 2 bytes/record.
  EXPECT_LT(packed.str().size() * 4, raw.str().size());
}

class CompressedRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(CompressedRoundTrip, WorkloadTraceRoundTripsAndShrinks) {
  WorkloadParams p;
  p.scale = 0.125;
  const Trace t = generate_workload(GetParam(), p);
  std::stringstream raw, packed;
  write_trace_binary(t, raw);
  write_trace_compressed(t, packed);
  EXPECT_EQ(read_trace_any(packed), t) << "lossless round-trip required";
  EXPECT_LT(packed.str().size(), raw.str().size())
      << "compression must not expand a real trace";
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, CompressedRoundTrip,
                         ::testing::ValuesIn(workload_names()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

}  // namespace
}  // namespace canu
