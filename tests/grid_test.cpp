// Config-grid replay suite (DESIGN.md §13): the one-pass grid sweep must be
// bit-for-bit equal to N independent single-configuration runs — the shared
// access-plan derivation, the SIMD probe kernel, sharding, and thread count
// must all be unobservable in any output. Plus the ConfigGrid parse /
// canonicalization contract and grid-row cancellation.
#include <gtest/gtest.h>

#include <initializer_list>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "cache/config_grid.hpp"
#include "core/evaluator.hpp"
#include "result_matchers.hpp"
#include "sim/runner.hpp"
#include "util/cancel.hpp"
#include "util/error.hpp"
#include "util/simd.hpp"
#include "workloads/workload.hpp"

namespace canu {
namespace {

constexpr const char* kWorkload = "synthetic_hotset";

WorkloadParams small_params() {
  WorkloadParams p;
  p.scale = 0.05;
  return p;
}

std::vector<std::string> tokens(std::initializer_list<const char*> list) {
  return std::vector<std::string>(list.begin(), list.end());
}

GridReport run_grid(const ConfigGrid& grid, unsigned threads) {
  EvalOptions opt;
  opt.params = small_params();
  opt.threads = threads;
  Evaluator ev(opt);
  return ev.evaluate_grid(grid, {kWorkload});
}

/// The reference each grid cell must match exactly: its own private model
/// (own index function — no sharing) driven through the serial single-run
/// path, on the same materialized trace.
RunResult independent_run(const GridPoint& pt, const Trace& trace) {
  const SchemeSpec spec = parse_scheme_spec(pt.scheme);
  auto model = build_l1_model(spec, pt.geometry(), &trace);
  RunResult r = run_trace(*model, trace);
  r.scheme = pt.label();  // grid reports label cells, not model names
  return r;
}

void expect_grid_matches_independent_runs(const ConfigGrid& grid,
                                          const std::vector<unsigned>& threads) {
  const Trace trace = generate_workload(kWorkload, small_params());
  std::map<std::string, RunResult> expected;
  for (const GridPoint& pt : grid.cells()) {
    expected.emplace(pt.label(), independent_run(pt, trace));
  }
  for (const unsigned t : threads) {
    SCOPED_TRACE("threads=" + std::to_string(t));
    const GridReport rep = run_grid(grid, t);
    ASSERT_EQ(rep.cell_labels.size(), grid.cell_count());
    EXPECT_TRUE(rep.skipped.empty());
    for (const std::string& label : rep.cell_labels) {
      SCOPED_TRACE("cell=" + label);
      const RunResult* got = rep.run(kWorkload, label);
      ASSERT_NE(got, nullptr);
      expect_same_result(expected.at(label), *got);
    }
  }
}

// ---------------------------------------------------------------------------
// Parity: one-pass grid vs independent runs

TEST(GridParity, IndexingSchemesAcrossSetsWaysAndThreads) {
  // Shared-index plan classes at every ways count, including a trained
  // scheme (givargis) so the profiled/materialized path is covered.
  const ConfigGrid grid =
      ConfigGrid::parse(tokens({"sets=512,1024", "ways=1,2,4", "line=32",
                                "scheme=modulo,xor,givargis"}));
  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
  expect_grid_matches_independent_runs(grid, {1, 2, hw});
}

TEST(GridParity, LineSizeDimensionAndWideWays) {
  // Distinct line sizes must land in distinct plan classes; ways=8 drives
  // the wide (SIMD-eligible) probe path in the L1 as well as the L2.
  const ConfigGrid grid = ConfigGrid::parse(
      tokens({"sets=256", "ways=1,8", "line=32,64", "scheme=modulo,xor"}));
  expect_grid_matches_independent_runs(grid, {1, 2});
}

TEST(GridParity, AssociativityOrganizationsAtWaysOne) {
  // The paper's programmable-associativity schemes ride the grid at ways=1
  // through the classic (unplanned) replay path.
  const ConfigGrid grid = ConfigGrid::parse(
      tokens({"sets=1024", "ways=1", "line=32",
              "scheme=column_assoc,adaptive,b_cache,victim,partner"}));
  expect_grid_matches_independent_runs(grid, {1, 2});
}

TEST(GridParity, ScalarAndAvx2KernelsAgree) {
  if (!simd::set_find_u64_kernel("avx2")) {
    GTEST_SKIP() << "AVX2 kernel unavailable (host or -DCANU_NO_AVX2 build)";
  }
  const ConfigGrid grid = ConfigGrid::parse(
      tokens({"sets=256", "ways=4,8", "line=32", "scheme=modulo,xor"}));
  const GridReport with_avx2 = run_grid(grid, 1);
  ASSERT_TRUE(simd::set_find_u64_kernel("scalar"));
  const GridReport with_scalar = run_grid(grid, 1);
  simd::set_find_u64_kernel("avx2");  // restore for later tests
  ASSERT_EQ(with_avx2.cell_labels, with_scalar.cell_labels);
  for (const std::string& label : with_avx2.cell_labels) {
    SCOPED_TRACE("cell=" + label);
    const RunResult* a = with_avx2.run(kWorkload, label);
    const RunResult* s = with_scalar.run(kWorkload, label);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(s, nullptr);
    expect_same_result(*a, *s);
  }
}

// ---------------------------------------------------------------------------
// Feasibility filtering

TEST(GridFeasibility, DirectOnlyOrganizationsSkipWiderWaysRows) {
  const ConfigGrid grid = ConfigGrid::parse(
      tokens({"sets=512", "ways=1,2", "scheme=column_assoc,modulo"}));
  const GridReport rep = run_grid(grid, 1);
  EXPECT_EQ(rep.cell_labels,
            (std::vector<std::string>{"column_assoc@512x1x32",
                                      "modulo@512x1x32", "modulo@512x2x32"}));
  ASSERT_EQ(rep.skipped.size(), 1u);
  EXPECT_NE(rep.skipped[0].find("column_assoc@512x2x32"), std::string::npos);
  EXPECT_NE(rep.skipped[0].find("ways=1"), std::string::npos);
  for (const std::string& label : rep.cell_labels) {
    EXPECT_NE(rep.run(kWorkload, label), nullptr);
  }
}

TEST(GridFeasibility, RejectsSchemesThatFixTheirOwnAssociativity) {
  EvalOptions opt;
  opt.params = small_params();
  opt.threads = 1;
  const Evaluator ev(opt);
  for (const char* name : {"2way", "4way", "8way", "skewed"}) {
    SCOPED_TRACE(name);
    const std::vector<std::string> spec = {std::string("scheme=") + name};
    const ConfigGrid grid = ConfigGrid::parse(spec);
    EXPECT_THROW(ev.evaluate_grid(grid, {kWorkload}), Error);
  }
}

TEST(GridFeasibility, UnknownSchemeNameThrows) {
  const ConfigGrid grid = ConfigGrid::parse(tokens({"scheme=nonesuch"}));
  EvalOptions opt;
  opt.params = small_params();
  opt.threads = 1;
  EXPECT_THROW(Evaluator(opt).evaluate_grid(grid, {kWorkload}), Error);
}

// ---------------------------------------------------------------------------
// Parse and canonicalization

TEST(GridParse, DefaultsArePaperL1) {
  const ConfigGrid grid = ConfigGrid::parse({});
  EXPECT_EQ(grid.canonical_tokens(),
            (std::vector<std::string>{"sets=1024", "ways=1", "line=32",
                                      "scheme=modulo"}));
  ASSERT_EQ(grid.cell_count(), 1u);
  EXPECT_EQ(grid.cells()[0].label(), "modulo@1024x1x32");
  EXPECT_EQ(grid.cells()[0].geometry().sets(), 1024u);
}

TEST(GridParse, PermutedAndDuplicatedSpecsCanonicalizeIdentically) {
  const ConfigGrid a = ConfigGrid::parse(tokens(
      {"scheme=xor,modulo", "ways=2,1", "sets=1024,512", "line=64,32"}));
  const ConfigGrid b = ConfigGrid::parse(tokens(
      {"sets=512,1024,512", "line=32,64", "ways=1,2",
       "scheme=modulo,xor,modulo"}));
  EXPECT_EQ(a.canonical_tokens(), b.canonical_tokens());
  const std::vector<GridPoint> ca = a.cells();
  const std::vector<GridPoint> cb = b.cells();
  ASSERT_EQ(ca.size(), cb.size());
  for (std::size_t i = 0; i < ca.size(); ++i) {
    EXPECT_EQ(ca[i].label(), cb[i].label());
  }
}

TEST(GridParse, CanonicalOrderIsSchemeMajorThenSetsWaysLine) {
  const ConfigGrid grid = ConfigGrid::parse(
      tokens({"sets=1024,512", "ways=2,1", "line=64,32", "scheme=xor,modulo"}));
  std::vector<std::string> labels;
  for (const GridPoint& pt : grid.cells()) labels.push_back(pt.label());
  EXPECT_EQ(labels, (std::vector<std::string>{
                        "modulo@512x1x32", "modulo@512x1x64",
                        "modulo@512x2x32", "modulo@512x2x64",
                        "modulo@1024x1x32", "modulo@1024x1x64",
                        "modulo@1024x2x32", "modulo@1024x2x64",
                        "xor@512x1x32", "xor@512x1x64",
                        "xor@512x2x32", "xor@512x2x64",
                        "xor@1024x1x32", "xor@1024x1x64",
                        "xor@1024x2x32", "xor@1024x2x64"}));
}

TEST(GridParse, MalformedDimensionsThrow) {
  const auto expect_bad = [](std::vector<std::string> ts) {
    std::string what;
    for (const std::string& t : ts) what += t + " ";
    SCOPED_TRACE(what);
    EXPECT_THROW(ConfigGrid::parse(ts), Error);
  };
  expect_bad(tokens({"sets=abc"}));        // not a number
  expect_bad(tokens({"sets="}));           // empty list
  expect_bad(tokens({"sets=1,,2"}));       // empty element
  expect_bad(tokens({"sets=-1"}));         // sign rejected
  expect_bad(tokens({"sets=3"}));          // not a power of two
  expect_bad(tokens({"sets=0"}));
  expect_bad(tokens({"ways=0"}));
  expect_bad(tokens({"ways=65"}));         // above the 64-way ceiling
  expect_bad(tokens({"line=3"}));          // not a power of two
  expect_bad(tokens({"line=2"}));          // below the 4-byte floor
  expect_bad(tokens({"line=8192"}));       // above the 4096-byte ceiling
  expect_bad(tokens({"scheme="}));
  expect_bad(tokens({"sets=512", "sets=1024"}));  // repeated dimension
  expect_bad(tokens({"bogus=1"}));         // unknown dimension
}

TEST(GridParse, OversizeGridThrows) {
  std::string scheme_list = "scheme=s0";
  for (int i = 1; i <= static_cast<int>(ConfigGrid::kMaxCells); ++i) {
    scheme_list += ",s" + std::to_string(i);
  }
  EXPECT_THROW(ConfigGrid::parse(tokens({scheme_list.c_str()})), Error);
}

TEST(GridParse, DimensionTokenDetection) {
  EXPECT_TRUE(is_grid_dimension_token("sets=512"));
  EXPECT_TRUE(is_grid_dimension_token("ways=1,2"));
  EXPECT_TRUE(is_grid_dimension_token("line=32"));
  EXPECT_TRUE(is_grid_dimension_token("scheme=modulo"));
  EXPECT_FALSE(is_grid_dimension_token("mibench"));
  EXPECT_FALSE(is_grid_dimension_token("--grid"));
  EXPECT_FALSE(is_grid_dimension_token("setsize=1"));
}

// ---------------------------------------------------------------------------
// Cancellation between grid rows

TEST(GridCancel, PreCancelledTokenUnwindsEvaluation) {
  CancelToken token;
  token.cancel();
  EvalOptions opt;
  opt.params = small_params();
  opt.threads = 1;
  opt.cancel = &token;
  const ConfigGrid grid = ConfigGrid::parse(
      tokens({"sets=512,1024", "ways=1,2", "scheme=modulo,xor"}));
  EXPECT_THROW(Evaluator(opt).evaluate_grid(grid, {kWorkload}), Cancelled);
}

}  // namespace
}  // namespace canu
