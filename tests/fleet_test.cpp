// Fleet-layer suite (DESIGN.md §16): consistent-hash ring properties
// (distribution bounds, minimal remapping, cross-build determinism),
// endpoint-list parsing, fleet-aware client routing + failover over real
// Unix-socket daemons, the server's route forward and `put` drain verb,
// frame-per-chunk streamed replies, and the cache's background journal
// compaction.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "fleet/endpoints.hpp"
#include "fleet/fleet_client.hpp"
#include "fleet/hash_ring.hpp"
#include "svc/client.hpp"
#include "svc/journal.hpp"
#include "svc/protocol.hpp"
#include "svc/result_cache.hpp"
#include "svc/server.hpp"
#include "svc/verbs.hpp"
#include "util/error.hpp"

namespace canu::fleet {
namespace {

/// mkdtemp under /tmp — short enough for sockaddr_un — removed on scope
/// exit.
struct TempDir {
  TempDir() {
    char tmpl[] = "/tmp/canu_fleet_XXXXXX";
    const char* p = mkdtemp(tmpl);
    EXPECT_NE(p, nullptr);
    path = p;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

std::string key_of(int i) { return "key-" + std::to_string(i); }

std::map<std::string, std::string> map_keys(const HashRing& ring, int n) {
  std::map<std::string, std::string> owner_of;
  for (int i = 0; i < n; ++i) owner_of[key_of(i)] = ring.owner(key_of(i));
  return owner_of;
}

// ---------------------------------------------------------------------------
// HashRing

TEST(HashRing, DistributionWithinBoundAcrossFourShards) {
  // The bound the default vnode count is sized for: across 4 shards at
  // >= 128 vnodes, the busiest shard owns at most 1.25x the share of the
  // least busy one.
  HashRing ring(HashRing::kDefaultVnodes);
  for (int s = 0; s < 4; ++s) ring.add("shard-" + std::to_string(s));
  std::map<std::string, int> counts;
  const int kKeys = 20000;
  for (int i = 0; i < kKeys; ++i) ++counts[ring.owner(key_of(i))];
  ASSERT_EQ(counts.size(), 4u);  // every shard owns something
  int min = kKeys;
  int max = 0;
  for (const auto& [shard, count] : counts) {
    min = std::min(min, count);
    max = std::max(max, count);
  }
  EXPECT_LE(static_cast<double>(max), 1.25 * static_cast<double>(min))
      << "max=" << max << " min=" << min;
}

TEST(HashRing, JoinMovesOnlyKeysOntoTheNewShard) {
  HashRing ring(HashRing::kDefaultVnodes);
  for (int s = 0; s < 4; ++s) ring.add("shard-" + std::to_string(s));
  const int kKeys = 20000;
  const auto before = map_keys(ring, kKeys);
  ring.add("shard-4");
  const auto after = map_keys(ring, kKeys);
  int moved = 0;
  for (int i = 0; i < kKeys; ++i) {
    const std::string& was = before.at(key_of(i));
    const std::string& now = after.at(key_of(i));
    if (was == now) continue;
    ++moved;
    // Consistent hashing's defining property: a join only pulls keys TO
    // the joining shard; no key moves between surviving shards.
    EXPECT_EQ(now, "shard-4") << key_of(i) << " moved " << was << " -> "
                              << now;
  }
  // Expected share is 1/5; allow generous slack around it but require the
  // remap to be a small minority, not a reshuffle.
  EXPECT_GT(moved, kKeys / 10);
  EXPECT_LT(moved, kKeys * 3 / 10);
}

TEST(HashRing, LeaveMovesOnlyTheDepartedShardsKeys) {
  HashRing ring(HashRing::kDefaultVnodes);
  for (int s = 0; s < 4; ++s) ring.add("shard-" + std::to_string(s));
  const int kKeys = 20000;
  const auto before = map_keys(ring, kKeys);
  ring.remove("shard-1");
  const auto after = map_keys(ring, kKeys);
  for (int i = 0; i < kKeys; ++i) {
    const std::string& was = before.at(key_of(i));
    const std::string& now = after.at(key_of(i));
    if (was == "shard-1") {
      EXPECT_NE(now, "shard-1");
    } else {
      EXPECT_EQ(now, was) << key_of(i) << " owned by a surviving shard "
                             "must not move on another shard's departure";
    }
  }
}

TEST(HashRing, PointPinsCrossBuildDeterminism) {
  // Exact ring positions, pinned so any hash change (or an accidental
  // std::hash) fails loudly: routing must agree across builds and hosts.
  EXPECT_EQ(HashRing::point(""), 0xf52a15e9a9b5e89bULL);
  EXPECT_EQ(HashRing::point("a"), 0x02c0bdbf481420f8ULL);
  EXPECT_EQ(HashRing::point("unix:/run/canud.sock#0"), 0x5e4f045eb5f5bc79ULL);
  EXPECT_EQ(HashRing::point("tcp:127.0.0.1:7070#17"), 0x19d46d0a7a1adf86ULL);
  EXPECT_EQ(HashRing::point("b19c0c68a64226d14470ee1f0deaa2dc"),
            0x44c95cdc321ed2d1ULL);
}

TEST(HashRing, IdenticalMembershipYieldsIdenticalRouting) {
  // Insertion order must not matter: client and daemons may list the same
  // endpoints in different orders yet must agree on every owner.
  HashRing forward(64);
  HashRing reverse(64);
  const std::vector<std::string> shards = {"unix:/a", "unix:/b", "tcp:h:1",
                                           "tcp:h:2"};
  for (auto it = shards.begin(); it != shards.end(); ++it) forward.add(*it);
  for (auto it = shards.rbegin(); it != shards.rend(); ++it)
    reverse.add(*it);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(forward.owner(key_of(i)), reverse.owner(key_of(i)));
  }
}

TEST(HashRing, OwnersListsDistinctShardsInSuccessionOrder) {
  HashRing ring(16);
  for (int s = 0; s < 4; ++s) ring.add("shard-" + std::to_string(s));
  const std::vector<std::string> order = ring.owners("some-key", 4);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), ring.owner("some-key"));
  const std::set<std::string> distinct(order.begin(), order.end());
  EXPECT_EQ(distinct.size(), 4u);
  // Asking for more than the membership caps at the membership.
  EXPECT_EQ(ring.owners("some-key", 10).size(), 4u);
}

TEST(HashRing, EmptyRingThrows) {
  const HashRing ring;
  EXPECT_THROW(ring.owner("k"), Error);
}

// ---------------------------------------------------------------------------
// Endpoint-list parsing

TEST(Endpoints, ParsesEveryAddressFormInOneList) {
  const std::vector<svc::Endpoint> eps = parse_endpoint_list(
      "/run/a.sock,@abstract,unix:/run/b.sock,127.0.0.1:7070,[::1]:7071,"
      "tcp:10.0.0.1:80");
  ASSERT_EQ(eps.size(), 6u);
  EXPECT_EQ(endpoint_name(eps[0]), "unix:/run/a.sock");
  EXPECT_EQ(endpoint_name(eps[1]), "unix:@abstract");
  EXPECT_EQ(endpoint_name(eps[2]), "unix:/run/b.sock");
  EXPECT_EQ(endpoint_name(eps[3]), "tcp:127.0.0.1:7070");
  EXPECT_EQ(endpoint_name(eps[4]), "tcp:::1:7071");
  EXPECT_EQ(endpoint_name(eps[5]), "tcp:10.0.0.1:80");
}

TEST(Endpoints, RejectsBareIpv6Literals) {
  // "::1:7070" is ambiguous (which colon splits the port?); the parser
  // demands brackets.
  EXPECT_THROW(parse_endpoint("::1:7070"), Error);
  EXPECT_NO_THROW(parse_endpoint("[::1]:7070"));
}

TEST(Endpoints, RejectsMalformedTokens) {
  EXPECT_THROW(parse_endpoint(""), Error);
  EXPECT_THROW(parse_endpoint("hostonly"), Error);       // no port
  EXPECT_THROW(parse_endpoint("host:0"), Error);         // port out of range
  EXPECT_THROW(parse_endpoint("host:99999"), Error);
  EXPECT_THROW(parse_endpoint("host:notaport"), Error);
  EXPECT_THROW(parse_endpoint("unix:"), Error);          // empty path
  EXPECT_THROW(parse_endpoint("[::1"), Error);           // unterminated '['
  EXPECT_THROW(parse_endpoint("[::1]7070"), Error);      // missing ':'
}

TEST(Endpoints, RejectsEmptyTokensDuplicatesAndEmptyLists) {
  EXPECT_THROW(parse_endpoint_list(""), Error);
  EXPECT_THROW(parse_endpoint_list("/a.sock,,/b.sock"), Error);
  EXPECT_THROW(parse_endpoint_list("/a.sock,/b.sock,"), Error);
  // Duplicates by canonical name, even across spellings.
  EXPECT_THROW(parse_endpoint_list("/a.sock,unix:/a.sock"), Error);
  EXPECT_THROW(parse_endpoint_list("127.0.0.1:7070,tcp:127.0.0.1:7070"),
               Error);
}

// ---------------------------------------------------------------------------
// Fleet client + daemons over real Unix sockets

std::string direct_verb_output(const svc::Request& req) {
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(svc::run_verb(req, out, err), 0);
  return std::move(out).str();
}

svc::Request list_request(std::uint64_t seed) {
  // `list` is cacheable and cheap; varying the seed varies the canonical
  // key without changing the output, giving many distinct ring keys.
  svc::Request req;
  req.verb = "list";
  req.params.seed = seed;
  return req;
}

/// A three-shard fleet on Unix sockets in one TempDir, each daemon wired
/// with the route-owner hook a real `canu serve --peers=...` would install.
struct Fleet {
  explicit Fleet(const std::string& dir, bool with_router = true) {
    for (int i = 0; i < 3; ++i) {
      svc::Endpoint ep;
      ep.unix_path = dir + "/s" + std::to_string(i);
      endpoints.push_back(ep);
    }
    for (int i = 0; i < 3; ++i) {
      svc::ServerOptions options;
      options.unix_socket = endpoints[i].unix_path;
      options.shard_id = "s" + std::to_string(i);
      if (with_router) {
        options.route_owner =
            make_router(endpoints, endpoint_name(endpoints[i]));
      }
      servers.push_back(std::make_unique<svc::Server>(std::move(options)));
      servers.back()->start();
    }
  }
  ~Fleet() {
    for (auto& server : servers) {
      if (server != nullptr) server->stop();
    }
  }

  std::vector<svc::Endpoint> endpoints;
  std::vector<std::unique_ptr<svc::Server>> servers;
};

TEST(FleetClient, RoutesEachRequestToItsRingOwner) {
  TempDir dir;
  Fleet fleet(dir.path, /*with_router=*/false);
  const FleetClient fc(fleet.endpoints);
  const std::string want = direct_verb_output(list_request(1));
  std::set<std::string> shards_hit;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const svc::Request req = list_request(seed);
    std::string shard;
    const svc::Response resp = fc.call(req, &shard);
    EXPECT_EQ(resp.status, "ok");
    EXPECT_EQ(resp.output, want);
    EXPECT_EQ(shard, fc.owner_for(req));  // client went straight to the owner
    shards_hit.insert(shard);
  }
  // 12 distinct keys over 3 shards: all shards take part (the chance of a
  // fixed deterministic mapping missing one is nil — this pins the spread).
  EXPECT_EQ(shards_hit.size(), 3u);
}

TEST(FleetClient, MisroutedRequestForwardsToOwner) {
  TempDir dir;
  Fleet fleet(dir.path);
  const FleetClient fc(fleet.endpoints);

  // Find a request whose owner is shard 0, then send it to a NON-owner
  // daemon directly: the route hook must forward it.
  svc::Request req = list_request(1);
  for (std::uint64_t seed = 1;
       fc.owner_for(req) != endpoint_name(fleet.endpoints[0]); ++seed) {
    req = list_request(seed);
  }
  const svc::Client wrong(fleet.endpoints[1]);
  const svc::Response resp = wrong.call(req);
  EXPECT_EQ(resp.status, "ok");
  EXPECT_EQ(resp.output, direct_verb_output(req));
  EXPECT_EQ(fleet.servers[1]->counters().forwarded, 1u);
  EXPECT_EQ(fleet.servers[0]->counters().admitted, 1u);
  // The owner cached it: a second misrouted submit is a forwarded warm hit.
  const svc::Response again = wrong.call(req);
  EXPECT_TRUE(again.result_cache_hit);
  EXPECT_EQ(fleet.servers[0]->counters().result_cache_hits, 1u);
}

TEST(FleetClient, FailsOverAlongTheRingWhenAShardDies) {
  TempDir dir;
  Fleet fleet(dir.path);
  const FleetClient fc(fleet.endpoints);

  // Find a request owned by shard 2, then kill shard 2.
  svc::Request req = list_request(1);
  for (std::uint64_t seed = 1;
       fc.owner_for(req) != endpoint_name(fleet.endpoints[2]); ++seed) {
    req = list_request(seed);
  }
  fleet.servers[2]->stop();
  fleet.servers[2].reset();

  std::string shard;
  const svc::Response resp = fc.call(req, &shard);
  EXPECT_EQ(resp.status, "ok");
  EXPECT_EQ(resp.output, direct_verb_output(req));
  EXPECT_NE(shard, endpoint_name(fleet.endpoints[2]));

  // Every shard down: the fleet call reports the outage instead of hanging.
  fleet.servers[0]->stop();
  fleet.servers[0].reset();
  fleet.servers[1]->stop();
  fleet.servers[1].reset();
  EXPECT_THROW(fc.call(req), Error);
}

TEST(Router, RequiresSelfInPeerList) {
  svc::Endpoint a;
  a.unix_path = "/run/a.sock";
  svc::Endpoint b;
  b.unix_path = "/run/b.sock";
  EXPECT_THROW(make_router({a, b}, "unix:/run/c.sock"), Error);
  EXPECT_NO_THROW(make_router({a, b}, "unix:/run/a.sock"));
}

// ---------------------------------------------------------------------------
// put / drain: journal records over the wire

std::string hex_encode(const std::string& bytes) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  for (const unsigned char c : bytes) {
    out.push_back(kHex[c >> 4]);
    out.push_back(kHex[c & 0xf]);
  }
  return out;
}

TEST(Drain, RecordBytesRoundTripAndRejectCorruption) {
  svc::CachedResult result;
  result.exit_code = 0;
  result.output = "table\nrows\n";
  result.error = "";
  const std::string bytes = svc::encode_record_bytes("somekey", result);
  svc::ResultJournal::Record back;
  ASSERT_TRUE(svc::decode_record_bytes(bytes, &back));
  EXPECT_EQ(back.key, "somekey");
  EXPECT_EQ(back.result.output, result.output);
  EXPECT_EQ(back.result.exit_code, 0);
  // Any flipped byte fails the checksum.
  for (const std::size_t at : {std::size_t{0}, bytes.size() / 2,
                               bytes.size() - 1}) {
    std::string bad = bytes;
    bad[at] = static_cast<char>(bad[at] ^ 0x40);
    EXPECT_FALSE(svc::decode_record_bytes(bad, &back)) << "at " << at;
  }
  EXPECT_FALSE(svc::decode_record_bytes("", &back));
  EXPECT_FALSE(svc::decode_record_bytes(bytes.substr(0, bytes.size() - 1),
                                        &back));
}

TEST(Drain, PutInjectsEntryServedAsWarmHit) {
  TempDir dir;
  svc::ServerOptions options;
  options.unix_socket = dir.path + "/s";
  svc::Server server(std::move(options));
  server.start();
  const svc::Client client([&] {
    svc::Endpoint ep;
    ep.unix_path = dir.path + "/s";
    return ep;
  }());

  // Ship a record for a real request's canonical key, as `canu drain` does.
  const svc::Request req = list_request(7);
  svc::CachedResult result;
  result.output = direct_verb_output(req);
  svc::Request put;
  put.verb = "put";
  put.body =
      hex_encode(svc::encode_record_bytes(svc::canonical_request_key(req),
                                          result));
  const svc::Response stored = client.call(put);
  EXPECT_EQ(stored.status, "ok");
  EXPECT_EQ(stored.output.rfind("stored ", 0), 0u) << stored.output;
  EXPECT_EQ(server.counters().drained_in, 1u);

  // Replaying the same record is idempotent.
  const svc::Response dup = client.call(put);
  EXPECT_EQ(dup.output.rfind("duplicate ", 0), 0u) << dup.output;
  EXPECT_EQ(server.counters().drained_in, 1u);

  // The drained entry serves the original request byte-identically, warm.
  const svc::Response hit = client.call(req);
  EXPECT_TRUE(hit.result_cache_hit);
  EXPECT_EQ(hit.output, result.output);

  // A corrupt record is rejected, never cached.
  svc::Request bad = put;
  bad.body[10] = bad.body[10] == 'a' ? 'b' : 'a';
  const svc::Response rejected = client.call(bad);
  EXPECT_NE(rejected.exit_code, 0);
  EXPECT_NE(rejected.error.find("malformed or corrupt"), std::string::npos);
  server.stop();
}

// ---------------------------------------------------------------------------
// Streamed replies

TEST(Streaming, ChunksPlusTailAreByteIdenticalToBuffered) {
  TempDir dir;
  svc::ServerOptions options;
  options.unix_socket = dir.path + "/s";
  svc::Server server(std::move(options));
  server.start();
  svc::Endpoint ep;
  ep.unix_path = dir.path + "/s";
  const svc::Client client(ep);

  svc::Request req;
  req.verb = "evaluate";
  req.args = {"sha", "--grid", "sets=512,1024"};
  req.params.scale = 0.0625;

  std::string chunks;
  const svc::Response streamed = client.call_streamed(
      req, [&chunks](std::string_view data) { chunks += data; });
  EXPECT_EQ(streamed.status, "ok");
  EXPECT_TRUE(streamed.streamed);
  // Chunks must actually ship as frames — even on a serial daemon, whose
  // worker runs inline on the connection thread (the direct-sink path).
  // A grid with one workload flushes its section once before the tail.
  EXPECT_GE(streamed.stream_chunks, 1u);
  EXPECT_EQ(streamed.stream_chunks > 0, !chunks.empty());

  const std::string direct = direct_verb_output(req);
  EXPECT_EQ(chunks + streamed.output, direct);

  // The same request buffered (it's a warm hit now) is byte-identical too,
  // and a warm hit needs no streaming: the reply arrives whole.
  const svc::Response buffered = client.call(req);
  EXPECT_TRUE(buffered.result_cache_hit);
  EXPECT_EQ(buffered.output, direct);
  server.stop();
}

TEST(Streaming, UnstreamedClientsSeeTheFullReply) {
  // accept_stream defaults off: a plain call to a streamable verb must get
  // the whole payload in the response (old clients keep working).
  TempDir dir;
  svc::ServerOptions options;
  options.unix_socket = dir.path + "/s";
  svc::Server server(std::move(options));
  server.start();
  svc::Endpoint ep;
  ep.unix_path = dir.path + "/s";
  svc::Request req;
  req.verb = "evaluate";
  req.args = {"sha", "--grid", "sets=512"};
  req.params.scale = 0.0625;
  const svc::Response resp = svc::Client(ep).call(req);
  EXPECT_EQ(resp.status, "ok");
  EXPECT_FALSE(resp.streamed);
  EXPECT_EQ(resp.output, direct_verb_output(req));
  server.stop();
}

// ---------------------------------------------------------------------------
// Background journal compaction

TEST(Compaction, RunsInBackgroundAndPreservesLiveEntries) {
  TempDir dir;
  const std::string journal = dir.path + "/cache.jrnl";
  svc::CachedResult ok;
  ok.output = "payload";
  {
    svc::ResultCache cache(4, journal);
    // 30 appends against a live set of 4 pushes the dead fraction far past
    // the compaction threshold; the rewrite happens on the background
    // thread, never on the appending path.
    for (int i = 0; i < 30; ++i) {
      EXPECT_TRUE(cache.put("key-" + std::to_string(i), ok));
    }
    cache.wait_compaction_idle();
    EXPECT_GE(cache.compactions(), 1u);
    EXPECT_EQ(cache.size(), 4u);
    EXPECT_FALSE(cache.journal_degraded());
  }
  // The compacted journal holds the live (FIFO-surviving) entries.
  svc::ResultCache reloaded(8, journal);
  EXPECT_GE(reloaded.restored(), 4u);
  const auto lookup = reloaded.acquire("key-29");
  ASSERT_EQ(lookup.role, svc::ResultCache::Role::kHit);
  EXPECT_EQ(lookup.hit->output, "payload");
}

}  // namespace
}  // namespace canu::fleet
