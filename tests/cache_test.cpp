// Unit + property tests for src/cache: the set-associative model,
// replacement policies, Belady OPT, the victim cache and the hierarchy.
#include <gtest/gtest.h>

#include "cache/belady.hpp"
#include "cache/config.hpp"
#include "cache/hierarchy.hpp"
#include "cache/set_assoc_cache.hpp"
#include "cache/victim_cache.hpp"
#include "indexing/modulo.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace canu {
namespace {

constexpr std::uint64_t kLine = 32;

Trace random_trace(std::size_t n, std::uint64_t lines, std::uint64_t seed) {
  Trace t("random");
  Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    t.append(0x1000'0000 + rng.below(lines) * kLine, AccessType::kRead);
  }
  return t;
}

// ----------------------------------------------------------- geometry ----

TEST(CacheGeometry, PaperConfiguration) {
  const CacheGeometry g = CacheGeometry::paper_l1();
  EXPECT_EQ(g.sets(), 1024u);
  EXPECT_EQ(g.lines(), 1024u);
  EXPECT_EQ(g.offset_bits(), 5u);
  EXPECT_EQ(g.index_bits(), 10u);
  EXPECT_NO_THROW(g.validate());

  const CacheGeometry l2 = CacheGeometry::paper_l2();
  EXPECT_EQ(l2.sets(), 1024u);
  EXPECT_EQ(l2.ways, 8u);
}

TEST(CacheGeometry, ValidationRejectsBadShapes) {
  CacheGeometry g{1000, 32, 1};  // not divisible into power-of-two sets
  EXPECT_THROW(g.validate(), Error);
  CacheGeometry g2{1024, 48, 1};  // non-pow2 line
  EXPECT_THROW(g2.validate(), Error);
}

// ----------------------------------------------------- basic behaviour ----

TEST(SetAssocCache, MissThenHit) {
  SetAssocCache cache(CacheGeometry{1024, 32, 1});
  EXPECT_FALSE(cache.access(0x1000).hit);
  EXPECT_TRUE(cache.access(0x1000).hit);
  EXPECT_TRUE(cache.access(0x101f).hit);   // same line
  EXPECT_FALSE(cache.access(0x1020).hit);  // next line
  EXPECT_EQ(cache.stats().accesses, 4u);
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(SetAssocCache, DirectMappedConflict) {
  SetAssocCache cache(CacheGeometry{1024, 32, 1});
  const std::uint64_t a = 0x0000, b = a + 32 * 1024;  // same set
  cache.access(a);
  cache.access(b);
  EXPECT_FALSE(cache.access(a).hit) << "b must have evicted a";
}

TEST(SetAssocCache, TwoWayHoldsBothConflictingLines) {
  SetAssocCache cache(CacheGeometry{64 * 1024, 32, 2});
  const std::uint64_t a = 0x0000, b = a + 32 * 1024;
  cache.access(a);
  cache.access(b);
  EXPECT_TRUE(cache.access(a).hit);
  EXPECT_TRUE(cache.access(b).hit);
}

TEST(SetAssocCache, LruEvictsLeastRecent) {
  // 2-way set; access a, b, touch a, insert c -> b evicted.
  SetAssocCache cache(CacheGeometry{64 * 1024, 32, 2});
  const std::uint64_t a = 0, b = 32 * 1024, c = 64 * 1024;
  cache.access(a);
  cache.access(b);
  cache.access(a);
  cache.access(c);
  EXPECT_TRUE(cache.access(a).hit);
  EXPECT_FALSE(cache.access(b).hit);
}

TEST(SetAssocCache, FifoIgnoresRecency) {
  SetAssocCache cache(CacheGeometry{64 * 1024, 32, 2}, nullptr,
                      ReplacementPolicy::kFifo);
  const std::uint64_t a = 0, b = 32 * 1024, c = 64 * 1024;
  cache.access(a);
  cache.access(b);
  cache.access(a);  // does not refresh under FIFO
  cache.access(c);  // evicts a (oldest insertion)
  EXPECT_FALSE(cache.contains(a));
  EXPECT_TRUE(cache.contains(b));
  EXPECT_TRUE(cache.contains(c));
}

TEST(SetAssocCache, RandomPolicyIsDeterministicPerSeed) {
  const Trace t = random_trace(20'000, 4096, 5);
  SetAssocCache c1(CacheGeometry{32 * 1024, 32, 4}, nullptr,
                   ReplacementPolicy::kRandom, 42);
  SetAssocCache c2(CacheGeometry{32 * 1024, 32, 4}, nullptr,
                   ReplacementPolicy::kRandom, 42);
  for (const MemRef& r : t) {
    ASSERT_EQ(c1.access(r.addr).hit, c2.access(r.addr).hit);
  }
}

TEST(SetAssocCache, ContainsTracksResidency) {
  SetAssocCache cache(CacheGeometry{1024, 32, 1});
  EXPECT_FALSE(cache.contains(0x40));
  cache.access(0x40);
  EXPECT_TRUE(cache.contains(0x40));
  EXPECT_TRUE(cache.contains(0x5f));  // same line
  const auto before = cache.stats().accesses;
  EXPECT_EQ(cache.stats().accesses, before) << "contains() must not count";
}

TEST(SetAssocCache, PerSetStatsConsistent) {
  const Trace t = random_trace(50'000, 8192, 6);
  SetAssocCache cache(CacheGeometry::paper_l1());
  for (const MemRef& r : t) cache.access(r.addr);

  std::uint64_t acc = 0, hits = 0, misses = 0;
  for (const SetStats& s : cache.set_stats()) {
    acc += s.accesses;
    hits += s.hits;
    misses += s.misses;
    EXPECT_EQ(s.accesses, s.hits + s.misses);
  }
  EXPECT_EQ(acc, cache.stats().accesses);
  EXPECT_EQ(hits, cache.stats().hits);
  EXPECT_EQ(misses, cache.stats().misses);
}

TEST(SetAssocCache, ResetStatsKeepsContents) {
  SetAssocCache cache(CacheGeometry{1024, 32, 1});
  cache.access(0x100);
  cache.reset_stats();
  EXPECT_EQ(cache.stats().accesses, 0u);
  EXPECT_TRUE(cache.access(0x100).hit) << "contents must survive reset_stats";
}

TEST(SetAssocCache, FlushDropsContents) {
  SetAssocCache cache(CacheGeometry{1024, 32, 1});
  cache.access(0x100);
  cache.flush();
  EXPECT_FALSE(cache.access(0x100).hit);
}

TEST(SetAssocCache, NameReflectsOrganization) {
  SetAssocCache direct(CacheGeometry{1024, 32, 1});
  EXPECT_EQ(direct.name(), "direct[modulo]");
  SetAssocCache assoc(CacheGeometry{4096, 32, 4});
  EXPECT_EQ(assoc.name(), "4way[modulo]");
}

// ----------------------------------- associativity monotonicity (LRU) ----

TEST(SetAssocCache, HigherAssociativityNeverWorseOnAverage) {
  // Not a theorem per-trace for set-partitioned caches, but on a random
  // trace with fixed capacity the expected ordering holds robustly.
  const Trace t = random_trace(200'000, 2048, 8);
  double prev_mr = 1.1;
  for (unsigned ways : {1u, 2u, 4u, 8u}) {
    SetAssocCache cache(CacheGeometry{32 * 1024, 32, ways});
    for (const MemRef& r : t) cache.access(r.addr);
    const double mr = cache.stats().miss_rate();
    EXPECT_LE(mr, prev_mr + 0.01) << ways << "-way regressed";
    prev_mr = mr;
  }
}

// ------------------------------------------------ LRU stack inclusion ----

TEST(SetAssocCache, LruStackInclusionProperty) {
  // Fully-associative LRU caches of growing capacity satisfy inclusion:
  // every hit in the small cache is a hit in the big one.
  const Trace t = random_trace(30'000, 512, 10);
  SetAssocCache small(CacheGeometry{4 * 1024, 32, 128});   // fully assoc
  SetAssocCache big(CacheGeometry{8 * 1024, 32, 256});     // fully assoc
  for (const MemRef& r : t) {
    const bool small_hit = small.access(r.addr).hit;
    const bool big_hit = big.access(r.addr).hit;
    ASSERT_FALSE(small_hit && !big_hit) << "inclusion violated";
  }
}

// ------------------------------------------------------------- belady ----

TEST(Belady, PerfectOnRepeatedScanThatFits) {
  Trace t;
  for (int rep = 0; rep < 4; ++rep) {
    for (int i = 0; i < 8; ++i) {
      t.append(static_cast<std::uint64_t>(i) * kLine, AccessType::kRead);
    }
  }
  const OptResult r = simulate_opt(t, CacheGeometry{8 * kLine, kLine, 8});
  EXPECT_EQ(r.misses, 8u);  // compulsory only
  EXPECT_EQ(r.hits, 24u);
}

TEST(Belady, BeatsLruOnAdversarialScan) {
  // Cyclic scan over capacity+1 lines: LRU misses everything, OPT does not.
  Trace t;
  const int lines = 9;  // cache holds 8
  for (int rep = 0; rep < 20; ++rep) {
    for (int i = 0; i < lines; ++i) {
      t.append(static_cast<std::uint64_t>(i) * kLine, AccessType::kRead);
    }
  }
  const CacheGeometry g{8 * kLine, kLine, 8};  // fully associative
  SetAssocCache lru(g);
  for (const MemRef& r : t) lru.access(r.addr);
  const OptResult opt = simulate_opt(t, g);
  EXPECT_EQ(lru.stats().misses, t.size()) << "LRU must thrash";
  EXPECT_LT(opt.misses, lru.stats().misses / 2);
}

TEST(Belady, LowerBoundsLruAcrossRandomTraces) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const Trace t = random_trace(40'000, 1024, seed);
    const CacheGeometry g{8 * 1024, 32, 4};
    SetAssocCache lru(g);
    for (const MemRef& r : t) lru.access(r.addr);
    const OptResult opt = simulate_opt(t, g);
    EXPECT_LE(opt.misses, lru.stats().misses) << "seed " << seed;
    EXPECT_EQ(opt.accesses, t.size());
  }
}

// ------------------------------------------------------- victim cache ----

TEST(VictimCache, RecoversConflictVictim) {
  VictimCache cache(CacheGeometry{1024, 32, 1}, 4);
  const std::uint64_t a = 0, b = 32 * 1024;  // conflicting lines
  cache.access(a);  // miss
  cache.access(b);  // miss, a -> victim buffer
  const AccessOutcome out = cache.access(a);  // victim hit, swap back
  EXPECT_TRUE(out.hit);
  EXPECT_EQ(out.probes, 2u);
  EXPECT_EQ(cache.victim_hits(), 1u);
  EXPECT_TRUE(cache.access(a).hit) << "swap must promote a to primary";
}

TEST(VictimCache, PingPongStaysInVictim) {
  VictimCache cache(CacheGeometry{1024, 32, 1}, 4);
  const std::uint64_t a = 0, b = 32 * 1024;
  cache.access(a);
  cache.access(b);
  // Alternating accesses now always hit (one in primary, one in victim).
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(cache.access(a).hit);
    EXPECT_TRUE(cache.access(b).hit);
  }
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(VictimCache, CapacityBounded) {
  VictimCache cache(CacheGeometry{1024, 32, 1}, 2);
  // Three conflicting lines cycle through a 2-entry buffer.
  const std::uint64_t s = 32 * 1024;
  cache.access(0 * s);
  cache.access(1 * s);
  cache.access(2 * s);
  cache.access(3 * s);  // pushes 0's line out of the 2-entry buffer
  EXPECT_FALSE(cache.access(0).hit);
}

TEST(VictimCache, RequiresDirectMappedPrimary) {
  EXPECT_THROW(VictimCache(CacheGeometry{64 * 1024, 32, 2}, 4), Error);
}

TEST(VictimCache, BeatsPlainDirectMappedOnConflicts) {
  const Trace t = random_trace(100'000, 2048, 12);
  SetAssocCache direct(CacheGeometry::paper_l1());
  VictimCache victim(CacheGeometry::paper_l1(), 8);
  for (const MemRef& r : t) {
    direct.access(r.addr);
    victim.access(r.addr);
  }
  EXPECT_LE(victim.stats().misses, direct.stats().misses);
}

// ---------------------------------------------------------- hierarchy ----

TEST(Hierarchy, L2SeesOnlyL1Misses) {
  SetAssocCache l1(CacheGeometry::paper_l1());
  Hierarchy h(l1, CacheGeometry::paper_l2());
  const Trace t = random_trace(50'000, 4096, 13);
  const HierarchyResult res = h.run(t);
  EXPECT_EQ(res.l1.accesses, t.size());
  EXPECT_EQ(res.l2.accesses, res.l1.misses);
}

TEST(Hierarchy, CycleAccountingMatchesComponents) {
  SetAssocCache l1(CacheGeometry{1024, 32, 1});
  TimingModel timing;
  Hierarchy h(l1, CacheGeometry::paper_l2(), timing);
  // One compulsory miss (L2 also misses -> memory) + one hit.
  const std::uint64_t c1 = h.access(0x100);
  const std::uint64_t c2 = h.access(0x100);
  EXPECT_EQ(c1, 1u + timing.l2_hit_cycles + timing.memory_cycles);
  EXPECT_EQ(c2, 1u);
  EXPECT_EQ(h.result().total_cycles, c1 + c2);
}

TEST(Hierarchy, AvgMissPenaltyWithinBounds) {
  SetAssocCache l1(CacheGeometry::paper_l1());
  TimingModel timing;
  Hierarchy h(l1, CacheGeometry::paper_l2(), timing);
  h.run(random_trace(80'000, 8192, 14));
  const double penalty = h.result().avg_miss_penalty();
  EXPECT_GE(penalty, timing.l2_hit_cycles);
  EXPECT_LE(penalty, timing.l2_hit_cycles + timing.memory_cycles);
}

TEST(Hierarchy, AcceptsCustomL2Organization) {
  // The L2 slot takes any CacheModel (ablation A14 swaps organizations).
  SetAssocCache l1(CacheGeometry::paper_l1());
  auto l2 = std::make_unique<VictimCache>(CacheGeometry{64 * 1024, 32, 1}, 8);
  VictimCache* l2_raw = l2.get();
  Hierarchy h(l1, std::move(l2));
  const Trace t = random_trace(30'000, 8192, 15);
  const HierarchyResult res = h.run(t);
  EXPECT_EQ(res.l2.accesses, res.l1.misses);
  EXPECT_EQ(&h.l2(), l2_raw);
  EXPECT_THROW(Hierarchy(l1, std::unique_ptr<CacheModel>{}), Error);
}

}  // namespace
}  // namespace canu
