// Unit tests for src/trace: containers, the deterministic address space,
// instrumented memory, serialization round-trips and trace statistics.
#include <sstream>

#include <gtest/gtest.h>

#include "trace/address_space.hpp"
#include "trace/trace.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_stats.hpp"
#include "trace/traced_memory.hpp"
#include "util/error.hpp"

namespace canu {
namespace {

// -------------------------------------------------------------- trace ----

TEST(Trace, AppendAndIterate) {
  Trace t("demo");
  t.append(0x100, AccessType::kRead);
  t.append(MemRef{0x200, AccessType::kWrite});
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].addr, 0x100u);
  EXPECT_EQ(t[1].type, AccessType::kWrite);
  EXPECT_EQ(t.name(), "demo");
}

TEST(Trace, EqualityIgnoresName) {
  Trace a("x"), b("y");
  a.append(1, AccessType::kRead);
  b.append(1, AccessType::kRead);
  EXPECT_EQ(a, b);
  b.append(2, AccessType::kRead);
  EXPECT_NE(a, b);
}

TEST(Trace, ExtendConcatenates) {
  Trace a, b;
  a.append(1, AccessType::kRead);
  b.append(2, AccessType::kWrite);
  a.extend(b);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[1].addr, 2u);
}

TEST(AccessTypeNames, AreStable) {
  EXPECT_STREQ(access_type_name(AccessType::kRead), "R");
  EXPECT_STREQ(access_type_name(AccessType::kWrite), "W");
  EXPECT_STREQ(access_type_name(AccessType::kFetch), "F");
}

// ------------------------------------------------------ address space ----

TEST(AddressSpace, SequentialAlignedAllocation) {
  AddressSpace space;
  const auto a = space.allocate(100, "a");
  const auto b = space.allocate(100, "b");
  EXPECT_EQ(a % 64, 0u);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_GE(b, a + 100 + 64);  // guard gap respected
  EXPECT_EQ(space.allocations(), 2u);
  EXPECT_EQ(space.label(0), "a");
}

TEST(AddressSpace, Deterministic) {
  AddressSpace s1, s2;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(s1.allocate(i * 7 + 1), s2.allocate(i * 7 + 1));
  }
}

TEST(AddressSpace, CustomBase) {
  AddressSpace::Options opt;
  opt.base = 0x4000'0000;
  AddressSpace space(opt);
  EXPECT_GE(space.allocate(8), 0x4000'0000u);
}

TEST(AddressSpace, RejectsZeroByteAllocation) {
  AddressSpace space;
  EXPECT_THROW(space.allocate(0), Error);
}

TEST(AddressSpace, RejectsNonPow2Alignment) {
  AddressSpace::Options opt;
  opt.alignment = 48;
  EXPECT_THROW(AddressSpace space(opt), Error);
}

// ------------------------------------------------------ traced memory ----

TEST(TracedArray, RecordsLoadsAndStores) {
  Trace trace;
  TraceRecorder rec(trace);
  AddressSpace space;
  TracedArray<std::uint32_t> arr(rec, space, 8, "arr");

  arr.store(3, 77);
  EXPECT_EQ(arr.load(3), 77u);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].type, AccessType::kWrite);
  EXPECT_EQ(trace[0].addr, arr.addr_of(3));
  EXPECT_EQ(trace[1].type, AccessType::kRead);
}

TEST(TracedArray, AddressesAreContiguous) {
  Trace trace;
  TraceRecorder rec(trace);
  AddressSpace space;
  TracedArray<std::uint64_t> arr(rec, space, 4);
  EXPECT_EQ(arr.addr_of(1), arr.addr_of(0) + 8);
  EXPECT_EQ(arr.addr_of(3), arr.base() + 24);
}

TEST(TracedArray, RawAccessIsUnrecorded) {
  Trace trace;
  TraceRecorder rec(trace);
  AddressSpace space;
  TracedArray<int> arr(rec, space, 4);
  arr.raw(0) = 5;
  EXPECT_EQ(arr.raw(0), 5);
  EXPECT_TRUE(trace.empty());
}

TEST(TracedArray, OutOfRangeThrows) {
  Trace trace;
  TraceRecorder rec(trace);
  AddressSpace space;
  TracedArray<int> arr(rec, space, 4);
  EXPECT_THROW(arr.load(4), Error);
  EXPECT_THROW(arr.store(100, 1), Error);
}

TEST(RecordingPause, SuppressesAndRestores) {
  Trace trace;
  TraceRecorder rec(trace);
  AddressSpace space;
  TracedArray<int> arr(rec, space, 4);
  {
    RecordingPause pause(rec);
    arr.store(0, 1);
    EXPECT_TRUE(trace.empty());
  }
  arr.store(0, 2);
  EXPECT_EQ(trace.size(), 1u);
}

TEST(TracedScalar, RecordsAccesses) {
  Trace trace;
  TraceRecorder rec(trace);
  AddressSpace space;
  TracedScalar<double> s(rec, space, 1.5);
  EXPECT_DOUBLE_EQ(s.load(), 1.5);
  s.store(2.5);
  EXPECT_DOUBLE_EQ(s.load(), 2.5);
  EXPECT_EQ(trace.size(), 3u);
}

// ----------------------------------------------------------------- io ----

TEST(TraceIo, BinaryRoundTrip) {
  Trace t("roundtrip");
  t.append(0xdeadbeef, AccessType::kRead);
  t.append(0x12345678'9abcdef0ULL, AccessType::kWrite);
  t.append(0, AccessType::kFetch);

  std::stringstream ss;
  write_trace_binary(t, ss);
  const Trace back = read_trace_binary(ss);
  EXPECT_EQ(back, t);
  EXPECT_EQ(back.name(), "roundtrip");
}

TEST(TraceIo, TextRoundTrip) {
  Trace t("text");
  t.append(0xff00, AccessType::kRead);
  t.append(0x42, AccessType::kWrite);

  std::stringstream ss;
  write_trace_text(t, ss);
  const Trace back = read_trace_text(ss);
  EXPECT_EQ(back, t);
  EXPECT_EQ(back.name(), "text");
}

TEST(TraceIo, RejectsBadMagic) {
  std::stringstream ss;
  ss << "NOTATRACE";
  EXPECT_THROW(read_trace_binary(ss), Error);
}

TEST(TraceIo, RejectsTruncatedStream) {
  Trace t;
  t.append(1, AccessType::kRead);
  std::stringstream ss;
  write_trace_binary(t, ss);
  std::string data = ss.str();
  data.resize(data.size() - 3);
  std::stringstream truncated(data);
  EXPECT_THROW(read_trace_binary(truncated), Error);
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  Trace t("empty");
  std::stringstream ss;
  write_trace_binary(t, ss);
  const Trace back = read_trace_binary(ss);
  EXPECT_TRUE(back.empty());
}

// -------------------------------------------------------------- stats ----

TEST(TraceStats, CountsTypesAndUniques) {
  Trace t;
  t.append(0x100, AccessType::kRead);
  t.append(0x100, AccessType::kWrite);
  t.append(0x120, AccessType::kRead);  // same 32-byte line as 0x100? no: 0x100>>5=8, 0x120>>5=9
  t.append(0x200, AccessType::kFetch);

  const TraceStats s = compute_trace_stats(t, 32);
  EXPECT_EQ(s.total, 4u);
  EXPECT_EQ(s.reads, 2u);
  EXPECT_EQ(s.writes, 1u);
  EXPECT_EQ(s.fetches, 1u);
  EXPECT_EQ(s.unique_addresses, 3u);
  EXPECT_EQ(s.unique_lines, 3u);
  EXPECT_EQ(s.footprint_bytes, 3u * 32u);
  EXPECT_EQ(s.min_addr, 0x100u);
  EXPECT_EQ(s.max_addr, 0x200u);
}

TEST(TraceStats, LineGranularity) {
  Trace t;
  t.append(0x100, AccessType::kRead);
  t.append(0x104, AccessType::kRead);  // same 32-byte line
  const TraceStats s = compute_trace_stats(t, 32);
  EXPECT_EQ(s.unique_addresses, 2u);
  EXPECT_EQ(s.unique_lines, 1u);
}

TEST(TraceStats, DominantStrideDetected) {
  Trace t;
  for (int i = 0; i < 100; ++i) {
    t.append(static_cast<std::uint64_t>(i) * 64, AccessType::kRead);
  }
  const TraceStats s = compute_trace_stats(t, 32);
  ASSERT_FALSE(s.top_strides.empty());
  EXPECT_EQ(s.top_strides[0].stride, 64);
  EXPECT_EQ(s.top_strides[0].count, 99u);
}

TEST(TraceStats, EmptyTrace) {
  const TraceStats s = compute_trace_stats(Trace{}, 32);
  EXPECT_EQ(s.total, 0u);
  EXPECT_EQ(s.unique_lines, 0u);
}

TEST(UniqueAddresses, SortedAndDeduplicated) {
  Trace t;
  t.append(30, AccessType::kRead);
  t.append(10, AccessType::kRead);
  t.append(30, AccessType::kRead);
  t.append(20, AccessType::kRead);
  const auto u = unique_addresses(t);
  EXPECT_EQ(u, (std::vector<std::uint64_t>{10, 20, 30}));
}

}  // namespace
}  // namespace canu
