// Unit tests for src/sim: the paper's AMAT formulas, the trace runner and
// the comparison-table renderer.
#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "assoc/adaptive_cache.hpp"
#include "assoc/column_associative.hpp"
#include "cache/set_assoc_cache.hpp"
#include "cache/victim_cache.hpp"
#include "sim/amat.hpp"
#include "sim/comparison.hpp"
#include "sim/runner.hpp"
#include "util/rng.hpp"

namespace canu {
namespace {

Trace random_trace(std::size_t n, std::uint64_t lines, std::uint64_t seed) {
  Trace t("random");
  Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    t.append(rng.below(lines) * 32, AccessType::kRead);
  }
  return t;
}

// --------------------------------------------------------------- amat ----

TEST(Amat, ConventionalFormula) {
  EXPECT_DOUBLE_EQ(amat_conventional(0.0, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(amat_conventional(0.1, 50.0), 1.0 + 5.0);
  EXPECT_DOUBLE_EQ(amat_conventional(1.0, 100.0, 2.0), 102.0);
}

TEST(Amat, AdaptiveFormulaHandCase) {
  // Formula (8): 80% of hits are direct, 10% miss rate, penalty 20:
  // 0.8*1 + 0.2*3 + 0.1*20 = 0.8 + 0.6 + 2.0 = 3.4
  EXPECT_DOUBLE_EQ(amat_adaptive(0.8, 0.1, 20.0), 3.4);
}

TEST(Amat, ColumnFormulaHandCase) {
  // Formula (9): 5% rehash hits (of hits), 60% of misses rehash-probed,
  // 10% miss rate, penalty 20:
  // 0.05*2 + 0.95*1 + 0.6*0.1*(21) + 0.4*0.1*20 = 0.1+0.95+1.26+0.8 = 3.11
  EXPECT_NEAR(amat_column_associative(0.05, 0.6, 0.1, 20.0), 3.11, 1e-12);
}

TEST(Amat, ZeroMissRateReducesToHitTimeSplit) {
  EXPECT_DOUBLE_EQ(amat_adaptive(1.0, 0.0, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(amat_column_associative(0.0, 0.0, 0.0, 100.0), 1.0);
}

TEST(Amat, MissPenaltyFromL2) {
  CacheStats l2;
  l2.accesses = 100;
  l2.misses = 25;
  l2.hits = 75;
  TimingModel t;
  EXPECT_DOUBLE_EQ(miss_penalty_from_l2(l2, t), 10.0 + 0.25 * 100.0);
}

// ------------------------------------------------------------- runner ----

TEST(Runner, FillsAllFields) {
  const Trace t = random_trace(30'000, 4096, 3);
  SetAssocCache l1(CacheGeometry::paper_l1());
  const RunResult r = run_trace(l1, t);
  EXPECT_EQ(r.l1.accesses, t.size());
  EXPECT_EQ(r.l2.accesses, r.l1.misses);
  EXPECT_GT(r.amat, 1.0);
  EXPECT_GT(r.measured_amat, 1.0);
  EXPECT_EQ(r.uniformity.sets, 1024u);
  EXPECT_GE(r.miss_penalty, 10.0);
  EXPECT_EQ(r.scheme, "direct[modulo]");
}

TEST(Runner, FlushesBeforeRunning) {
  const Trace t = random_trace(10'000, 1024, 4);
  SetAssocCache l1(CacheGeometry::paper_l1());
  const RunResult first = run_trace(l1, t);
  const RunResult second = run_trace(l1, t);
  EXPECT_EQ(first.l1.misses, second.l1.misses) << "runs must be independent";
}

TEST(Runner, AnalyticMatchesMeasuredForConventional) {
  // For a conventional L1 the analytic AMAT and the cycle-accounted AMAT
  // use the same model, so they agree up to the averaging of the penalty.
  const Trace t = random_trace(50'000, 4096, 5);
  SetAssocCache l1(CacheGeometry::paper_l1());
  const RunResult r = run_trace(l1, t);
  EXPECT_NEAR(r.amat, r.measured_amat, r.measured_amat * 0.02);
}

TEST(Runner, SchemeAmatDispatchesToColumnFormula) {
  const Trace t = random_trace(50'000, 2048, 6);
  ColumnAssociativeCache column(CacheGeometry::paper_l1());
  const RunResult r = run_trace(column, t);
  // Reconstruct formula (9) by hand from the model's counters (hit-time
  // fractions are over hits).
  const CacheStats& s = column.stats();
  const double expected = amat_column_associative(
      column.fraction_rehash_hits(), column.fraction_rehash_misses(),
      s.miss_rate(), r.miss_penalty);
  EXPECT_DOUBLE_EQ(r.amat, expected);
}

TEST(Runner, SchemeAmatDispatchesToAdaptiveFormula) {
  const Trace t = random_trace(50'000, 2048, 7);
  AdaptiveCache adaptive(CacheGeometry::paper_l1());
  const RunResult r = run_trace(adaptive, t);
  const CacheStats& s = adaptive.stats();
  EXPECT_DOUBLE_EQ(r.amat, amat_adaptive(s.primary_hit_fraction(),
                                         s.miss_rate(), r.miss_penalty));
}

TEST(Runner, VictimCacheUsesTwoCycleSwapModel) {
  const Trace t = random_trace(30'000, 2048, 8);
  VictimCache victim(CacheGeometry::paper_l1(), 8);
  const RunResult r = run_trace(victim, t);
  EXPECT_GT(r.amat, 1.0);
  // Victim AMAT must exceed the conventional formula at the same miss rate
  // (secondary hits cost 2 cycles, misses pay the probe).
  EXPECT_GT(r.amat,
            amat_conventional(r.l1.miss_rate(), r.miss_penalty) - 1e-9);
}

// --------------------------------------------------- comparison table ----

TEST(ComparisonTable, StoresAndAverages) {
  ComparisonTable t("% reduction");
  t.set("fft", "xor", 10.0);
  t.set("fft", "odd", 20.0);
  t.set("sha", "xor", 30.0);
  EXPECT_DOUBLE_EQ(*t.get("fft", "xor"), 10.0);
  EXPECT_FALSE(t.get("sha", "odd").has_value());
  EXPECT_DOUBLE_EQ(t.column_average("xor"), 20.0);
  EXPECT_DOUBLE_EQ(t.column_average("odd"), 20.0);
}

TEST(ComparisonTable, AverageSkipsNaN) {
  ComparisonTable t("x");
  t.set("a", "s", 10.0);
  t.set("b", "s", std::nan(""));
  EXPECT_DOUBLE_EQ(t.column_average("s"), 10.0);
}

TEST(ComparisonTable, PrintsAverageRow) {
  ComparisonTable t("metric");
  t.set("fft", "xor", 12.5);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Average"), std::string::npos);
  EXPECT_NE(out.find("12.50"), std::string::npos);
  EXPECT_NE(out.find("metric"), std::string::npos);
}

TEST(ComparisonTable, CsvRoundTripShape) {
  ComparisonTable t("m");
  t.set("a", "s1", 1.0);
  t.set("a", "s2", 2.0);
  t.set("b", "s1", 3.0);
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "benchmark,s1,s2\na,1,2\nb,3,\n");
}

}  // namespace
}  // namespace canu
