// Parity and safety of the parallel sharded batch engine.
//
// The determinism contract (DESIGN.md §9) is bit-for-bit: scheme pipelines
// share no mutable state and every pipeline consumes the identical chunk
// sequence in order, so ParallelBatchRunner must produce results EQ to the
// serial BatchRunner and to run_trace() for every paper scheme, at every
// thread count, through every feed path (synchronous, double-buffered
// async, chunking sink).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/evaluator.hpp"
#include "core/scheme.hpp"
#include "result_matchers.hpp"
#include "sim/parallel_batch_runner.hpp"
#include "trace/trace_cache.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"
#include "workloads/workload.hpp"

#include <filesystem>

namespace canu {
namespace {

WorkloadParams small_params() {
  WorkloadParams p;
  p.scale = 0.05;
  return p;
}

/// Thread counts every parity sweep covers: the serial engine, a small
/// pool, and whatever the host offers.
std::vector<unsigned> parity_thread_counts() {
  return {1u, 2u, std::max(1u, std::thread::hardware_concurrency())};
}

std::vector<RunResult> run_parallel(const Trace& trace,
                                    const std::vector<SchemeSpec>& specs,
                                    unsigned threads, std::size_t chunk_refs) {
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  ParallelBatchRunner runner(RunConfig(), pool.get());
  std::vector<std::unique_ptr<CacheModel>> models;
  for (const SchemeSpec& spec : specs) {
    models.push_back(build_l1_model(spec, CacheGeometry::paper_l1(), &trace));
    runner.add(*models.back());
  }
  SpanSource source(trace.name(), trace.refs(), chunk_refs);
  return run_batch(runner, source);
}

TEST(ParallelBatchParity, MatchesSerialAndRunTraceForEveryScheme) {
  for (const std::string& workload : {std::string("fft"),
                                      std::string("qsort")}) {
    const Trace trace = generate_workload(workload, small_params());
    const std::vector<SchemeSpec> specs = paper_parity_schemes();

    // Reference 1: one run_trace per scheme, each with a fresh model.
    std::vector<RunResult> reference;
    for (const SchemeSpec& spec : specs) {
      auto model = build_l1_model(spec, CacheGeometry::paper_l1(), &trace);
      reference.push_back(run_trace(*model, trace));
    }

    // Reference 2: the serial BatchRunner.
    std::vector<RunResult> serial;
    {
      BatchRunner runner;
      std::vector<std::unique_ptr<CacheModel>> models;
      for (const SchemeSpec& spec : specs) {
        models.push_back(
            build_l1_model(spec, CacheGeometry::paper_l1(), &trace));
        runner.add(*models.back());
      }
      SpanSource source(workload, trace.refs(), /*chunk_refs=*/4096);
      serial = run_batch(runner, source);
    }
    ASSERT_EQ(serial.size(), reference.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      SCOPED_TRACE(workload + " serial / " + specs[i].label());
      expect_same_result(serial[i], reference[i]);
    }

    // Parallel at every thread count, chunked smaller than the trace so
    // several double-buffer handoffs land inside the stream.
    for (const unsigned threads : parity_thread_counts()) {
      const std::vector<RunResult> parallel =
          run_parallel(trace, specs, threads, /*chunk_refs=*/4096);
      ASSERT_EQ(parallel.size(), reference.size());
      for (std::size_t i = 0; i < specs.size(); ++i) {
        SCOPED_TRACE(workload + " threads=" + std::to_string(threads) + " / " +
                     specs[i].label());
        expect_same_result(parallel[i], serial[i]);
        expect_same_result(parallel[i], reference[i]);
      }
    }
  }
}

TEST(ParallelBatchParity, ChunkSizeAndShardingDoNotChangeResults) {
  const Trace trace = generate_workload("dijkstra", small_params());
  const std::vector<SchemeSpec> specs = {
      SchemeSpec::baseline(),
      SchemeSpec::column_associative(),
      SchemeSpec::indexing(IndexScheme::kXor),
  };
  const std::vector<RunResult> reference =
      run_parallel(trace, specs, 1, kDefaultChunkRefs);
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{777},
                                  std::size_t{1} << 20}) {
    for (const unsigned threads : parity_thread_counts()) {
      const std::vector<RunResult> got =
          run_parallel(trace, specs, threads, chunk);
      for (std::size_t i = 0; i < specs.size(); ++i) {
        SCOPED_TRACE("chunk=" + std::to_string(chunk) +
                     " threads=" + std::to_string(threads) + " / " +
                     specs[i].label());
        expect_same_result(got[i], reference[i]);
      }
    }
  }
}

TEST(ParallelBatchParity, SinkPathMatchesRunTrace) {
  const Trace trace = generate_workload("crc", small_params());
  auto reference_model = build_l1_model(SchemeSpec::indexing(IndexScheme::kXor),
                                        CacheGeometry::paper_l1(), &trace);
  const RunResult reference = run_trace(*reference_model, trace);

  ThreadPool pool(2);
  ParallelBatchRunner runner(RunConfig(), &pool);
  auto model = build_l1_model(SchemeSpec::indexing(IndexScheme::kXor),
                              CacheGeometry::paper_l1(), &trace);
  runner.add(*model);
  // Push single references through a small-chunk sink, as a generating
  // workload would, exercising the double-buffer handoff many times.
  ChunkingSink sink = runner.make_sink(/*chunk_refs=*/512);
  for (const MemRef& r : trace.refs()) sink.push(r);
  sink.flush();
  expect_same_result(runner.result(0, "crc"), reference);
}

TEST(ParallelBatchParity, ResetAllowsReuseAcrossWorkloads) {
  const Trace first = generate_workload("fft", small_params());
  const Trace second = generate_workload("crc", small_params());

  ThreadPool pool(2);
  auto model = build_l1_model(SchemeSpec::indexing(IndexScheme::kXor),
                              CacheGeometry::paper_l1(), nullptr);
  ParallelBatchRunner runner(RunConfig(), &pool);
  runner.add(*model);
  SpanSource s1("fft", first.refs(), /*chunk_refs=*/4096);
  run_batch(runner, s1);

  runner.reset();
  model->flush();
  SpanSource s2("crc", second.refs(), /*chunk_refs=*/4096);
  const RunResult reused = run_batch(runner, s2).front();

  auto fresh_model = build_l1_model(SchemeSpec::indexing(IndexScheme::kXor),
                                    CacheGeometry::paper_l1(), nullptr);
  const RunResult fresh = run_trace(*fresh_model, second);
  expect_same_result(reused, fresh);
}

// The Evaluator nests workload tasks and pipeline shards on one shared
// pool; its report must not depend on the thread count either.
TEST(ParallelBatchParity, EvaluatorReportIndependentOfThreadCount) {
  EvalOptions base_opt;
  base_opt.params = small_params();

  const auto evaluate_with = [&](unsigned threads) {
    EvalOptions opt = base_opt;
    opt.threads = threads;
    Evaluator ev(opt);
    ev.add_scheme(SchemeSpec::indexing(IndexScheme::kXor));
    ev.add_scheme(SchemeSpec::column_associative());
    ev.add_scheme(SchemeSpec::indexing(IndexScheme::kGivargis));
    return ev.evaluate({"fft", "crc", "adpcm"});
  };

  const EvalReport serial = evaluate_with(1);
  for (const unsigned threads : {2u, 4u}) {
    const EvalReport parallel = evaluate_with(threads);
    ASSERT_EQ(parallel.workloads, serial.workloads);
    ASSERT_EQ(parallel.scheme_labels, serial.scheme_labels);
    for (const std::string& w : serial.workloads) {
      SCOPED_TRACE("threads=" + std::to_string(threads) + " workload=" + w);
      expect_same_result(parallel.baseline_runs.at(w),
                         serial.baseline_runs.at(w));
      for (const std::string& s : serial.scheme_labels) {
        const EvalCell* sc = serial.cell(w, s);
        const EvalCell* pc = parallel.cell(w, s);
        ASSERT_NE(sc, nullptr);
        ASSERT_NE(pc, nullptr);
        expect_same_result(pc->run, sc->run);
        EXPECT_EQ(pc->miss_reduction_pct, sc->miss_reduction_pct);
        EXPECT_EQ(pc->amat_reduction_pct, sc->amat_reduction_pct);
        EXPECT_EQ(pc->kurtosis_increase_pct, sc->kurtosis_increase_pct);
        EXPECT_EQ(pc->skewness_increase_pct, sc->skewness_increase_pct);
      }
    }
  }
}

// A replay exception (from a poisoned pipeline) must surface from the
// collection call, and must not wedge the runner or the pool.
TEST(ParallelBatchRunner, DrainsAndRethrowsWithoutOutOfRangeResults) {
  ThreadPool pool(2);
  ParallelBatchRunner runner(RunConfig(), &pool);
  auto model = build_l1_model(SchemeSpec::baseline(),
                              CacheGeometry::paper_l1(), nullptr);
  runner.add(*model);
  EXPECT_THROW(runner.result(1, "nope"), Error);
  // The runner stays usable after the failed call.
  const Trace trace = generate_workload("crc", small_params());
  SpanSource source("crc", trace.refs(), 4096);
  const std::vector<RunResult> results = run_batch(runner, source);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results.front().l1.accesses, trace.size());
}

// Two threads racing a streaming store on the SAME key: stores are atomic
// (temp file + rename), so both commit, the winner's file is a complete
// valid trace, and readers never observe a partial file.
TEST(TraceCacheConcurrency, TwoConcurrentWritersOnOneKey) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("canu-parallel-cache-test-" +
       std::to_string(::testing::UnitTest::GetInstance()->random_seed()));
  std::filesystem::remove_all(dir);
  const WorkloadParams params = small_params();
  const Trace trace = generate_workload("sha", params);
  const std::string key = workload_cache_key("sha", params);

  {
    const TraceCache cache(dir.string());
    std::atomic<bool> go{false};
    const auto writer_thread = [&] {
      while (!go.load()) std::this_thread::yield();
      auto writer = cache.begin_store(key, "sha");
      writer->write(trace.refs());
      writer->commit();
    };
    std::thread a(writer_thread);
    std::thread b(writer_thread);
    go.store(true);
    a.join();
    b.join();
    EXPECT_EQ(cache.stores(), 2u);
    EXPECT_TRUE(cache.contains(key));

    Trace loaded("sha");
    ASSERT_TRUE(cache.load(key, loaded));
    ASSERT_EQ(loaded.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
      ASSERT_EQ(loaded.refs()[i], trace.refs()[i]) << "ref " << i;
    }
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace canu
