// Tests for src/core: scheme factory, the Evaluator and the Advisor.
#include <gtest/gtest.h>

#include "core/advisor.hpp"
#include "core/evaluator.hpp"
#include "core/scheme.hpp"
#include "util/rng.hpp"

namespace canu {
namespace {

WorkloadParams fast_params() {
  WorkloadParams p;
  p.scale = 0.25;
  return p;
}

// -------------------------------------------------------------- scheme ----

TEST(SchemeSpec, LabelsAreStable) {
  EXPECT_EQ(SchemeSpec::baseline().label(), "direct[modulo]");
  EXPECT_EQ(SchemeSpec::indexing(IndexScheme::kXor).label(), "direct[xor]");
  EXPECT_EQ(SchemeSpec::set_assoc(4).label(), "4way");
  EXPECT_EQ(SchemeSpec::column_associative().label(),
            "column_assoc[modulo]");
  EXPECT_EQ(SchemeSpec::column_associative(IndexScheme::kPrimeModulo).label(),
            "column_assoc[prime_modulo]");
  EXPECT_EQ(SchemeSpec::adaptive_cache().label(), "adaptive");
  EXPECT_EQ(SchemeSpec::b_cache().label(), "b_cache");
  EXPECT_EQ(SchemeSpec::victim_cache(4).label(), "victim(4)");
}

TEST(SchemeSpec, BuildsEveryOrganization) {
  Trace profile;
  Xoshiro256 rng(1);
  for (int i = 0; i < 2000; ++i) {
    profile.append(rng.below(1 << 20), AccessType::kRead);
  }
  const CacheGeometry g = CacheGeometry::paper_l1();
  for (const SchemeSpec& spec :
       {SchemeSpec::baseline(), SchemeSpec::indexing(IndexScheme::kGivargis),
        SchemeSpec::set_assoc(8), SchemeSpec::column_associative(),
        SchemeSpec::adaptive_cache(), SchemeSpec::b_cache(),
        SchemeSpec::victim_cache()}) {
    auto model = build_l1_model(spec, g, &profile);
    ASSERT_NE(model, nullptr) << spec.label();
    model->access(0x1234);
    EXPECT_EQ(model->stats().accesses, 1u) << spec.label();
  }
}

TEST(SchemeSpec, SetAssocChangesGeometry) {
  auto model = build_l1_model(SchemeSpec::set_assoc(8),
                              CacheGeometry::paper_l1(), nullptr);
  EXPECT_EQ(model->num_sets(), 128u) << "32KB / (32B * 8 ways)";
}

// ------------------------------------------------------------ evaluator ----

TEST(Evaluator, ProducesAllCells) {
  EvalOptions opt;
  opt.params = fast_params();
  Evaluator ev(opt);
  ev.add_scheme(SchemeSpec::indexing(IndexScheme::kXor));
  ev.add_scheme(SchemeSpec::column_associative());

  const EvalReport rep = ev.evaluate({"crc", "sha"});
  EXPECT_EQ(rep.workloads.size(), 2u);
  EXPECT_EQ(rep.scheme_labels.size(), 2u);
  EXPECT_EQ(rep.cells.size(), 4u);
  EXPECT_EQ(rep.baseline_runs.size(), 2u);
  ASSERT_NE(rep.cell("crc", "direct[xor]"), nullptr);
  EXPECT_EQ(rep.cell("crc", "nonexistent"), nullptr);
}

TEST(Evaluator, ReductionsConsistentWithRuns) {
  EvalOptions opt;
  opt.params = fast_params();
  Evaluator ev(opt);
  ev.add_scheme(SchemeSpec::column_associative());
  const EvalReport rep = ev.evaluate({"crc"});
  const EvalCell* cell = rep.cell("crc", "column_assoc[modulo]");
  ASSERT_NE(cell, nullptr);
  const RunResult& base = rep.baseline_runs.at("crc");
  const double expected =
      100.0 * (base.miss_rate() - cell->run.miss_rate()) / base.miss_rate();
  EXPECT_NEAR(cell->miss_reduction_pct, expected, 1e-9);
}

TEST(Evaluator, DeterministicAcrossThreadCounts) {
  EvalOptions opt1;
  opt1.params = fast_params();
  opt1.threads = 1;
  EvalOptions opt4 = opt1;
  opt4.threads = 4;

  Evaluator e1(opt1), e4(opt4);
  e1.add_paper_indexing_schemes();
  e4.add_paper_indexing_schemes();
  const EvalReport r1 = e1.evaluate({"crc", "bitcount"});
  const EvalReport r4 = e4.evaluate({"crc", "bitcount"});
  for (const auto& [key, cell] : r1.cells) {
    const EvalCell* other = r4.cell(key.first, key.second);
    ASSERT_NE(other, nullptr);
    EXPECT_DOUBLE_EQ(cell.run.miss_rate(), other->run.miss_rate());
  }
}

TEST(Evaluator, PaperSchemeSetsHaveExpectedLabels) {
  Evaluator ev;
  ev.add_paper_indexing_schemes();
  ev.add_paper_assoc_schemes();
  std::vector<std::string> labels;
  for (const SchemeSpec& s : ev.schemes()) labels.push_back(s.label());
  EXPECT_EQ(labels,
            (std::vector<std::string>{
                "direct[xor]", "direct[odd_multiplier]",
                "direct[prime_modulo]", "direct[givargis]",
                "direct[givargis_xor]", "adaptive", "b_cache",
                "column_assoc[modulo]"}));
}

TEST(Evaluator, TablesCarryAllRows) {
  EvalOptions opt;
  opt.params = fast_params();
  Evaluator ev(opt);
  ev.add_scheme(SchemeSpec::b_cache());
  const EvalReport rep = ev.evaluate({"crc", "sha", "bitcount"});
  const ComparisonTable t = rep.miss_reduction_table();
  EXPECT_EQ(t.rows().size(), 3u);
  EXPECT_EQ(t.columns().size(), 1u);
}

TEST(Evaluator, RejectsEmptyWorkloadList) {
  Evaluator ev;
  EXPECT_THROW(ev.evaluate({}), Error);
}

// -------------------------------------------------------------- advisor ----

TEST(Advisor, RanksByMissRate) {
  Advisor::Options opt;
  Advisor advisor(opt);
  const AdvisorReport rep = advisor.advise_workload("crc", fast_params());
  ASSERT_FALSE(rep.ranked.empty());
  for (std::size_t i = 1; i < rep.ranked.size(); ++i) {
    EXPECT_LE(rep.ranked[i - 1].result.miss_rate(),
              rep.ranked[i].result.miss_rate());
  }
}

TEST(Advisor, CandidateSetMatchesOptions) {
  Advisor::Options idx_only;
  idx_only.include_programmable_associativity = false;
  EXPECT_EQ(Advisor(idx_only).candidates().size(), 5u);

  Advisor::Options assoc_only;
  assoc_only.include_indexing = false;
  EXPECT_EQ(Advisor(assoc_only).candidates().size(), 3u);
}

TEST(Advisor, BestChoiceBeatsOrMatchesRest) {
  const AdvisorReport rep =
      Advisor().advise_workload("synthetic_strided", fast_params());
  // The strided workload aliases onto one set under modulo indexing: some
  // candidate must improve on the baseline massively.
  EXPECT_GT(rep.best().miss_reduction_pct, 50.0);
  EXPECT_FALSE(rep.keep_conventional());
}

TEST(Advisor, KeepsConventionalWhenNothingHelps) {
  // A pure sequential sweep has only compulsory misses: no scheme can
  // reduce them, so the advisor should fall back to conventional indexing.
  const AdvisorReport rep =
      Advisor().advise_workload("synthetic_sequential", fast_params());
  EXPECT_LE(rep.best().miss_reduction_pct, 1.0);
}

}  // namespace
}  // namespace canu
