// Robustness suite (DESIGN.md §12): deterministic fault injection, the
// crash-safe result journal (including a real SIGKILL-mid-append subprocess
// test), persistent-cache restore, request deadlines and cancellation, the
// two-class priority scheduler, IPv6/abstract socket addressing, client
// retry with backoff, and trace-cache corruption recovery.
//
// Fault arming is process-global; every test that arms a site disarms it
// via FaultGuard so failures cannot leak into later tests.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "svc/client.hpp"
#include "svc/journal.hpp"
#include "svc/protocol.hpp"
#include "svc/result_cache.hpp"
#include "svc/scheduler.hpp"
#include "svc/server.hpp"
#include "svc/socket.hpp"
#include "trace/trace.hpp"
#include "trace/trace_cache.hpp"
#include "trace/trace_io.hpp"
#include "util/cancel.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/thread_pool.hpp"

namespace canu {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

/// mkdtemp under /tmp — short enough for sockaddr_un — removed on scope
/// exit.
struct TempDir {
  TempDir() {
    char tmpl[] = "/tmp/canu_flt_XXXXXX";
    const char* p = mkdtemp(tmpl);
    EXPECT_NE(p, nullptr);
    path = p;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

/// Disarms on scope exit so one test's faults never outlive it.
struct FaultGuard {
  explicit FaultGuard(const std::string& spec) { fault::arm(spec); }
  ~FaultGuard() { fault::disarm(); }
};

svc::CachedResult ok_result(const std::string& output) {
  svc::CachedResult r;
  r.status = "ok";
  r.exit_code = 0;
  r.output = output;
  return r;
}

void wait_until(const std::function<bool()>& pred,
                std::chrono::milliseconds limit = 5000ms) {
  const auto give_up = std::chrono::steady_clock::now() + limit;
  while (!pred()) {
    ASSERT_LT(std::chrono::steady_clock::now(), give_up);
    std::this_thread::sleep_for(2ms);
  }
}

// ---------------------------------------------------------------------------
// Fault-injection harness

TEST(FaultSpec, FiresOnExactHitThenStaysQuiet) {
  FaultGuard guard("unit.site:3");
  EXPECT_TRUE(fault::armed());
  EXPECT_FALSE(fault::should_fail("unit.site"));
  EXPECT_FALSE(fault::should_fail("unit.site"));
  EXPECT_TRUE(fault::should_fail("unit.site"));   // the armed 3rd hit
  EXPECT_FALSE(fault::should_fail("unit.site"));  // fires exactly once
  EXPECT_EQ(fault::hits("unit.site"), 4u);
  EXPECT_FALSE(fault::should_fail("other.site"));  // unarmed sites are quiet
  fault::disarm();
  EXPECT_FALSE(fault::armed());
  EXPECT_EQ(fault::hits("unit.site"), 0u);
}

TEST(FaultSpec, ParsesMultipleEntriesAndActions) {
  FaultGuard guard("a.one:1,b.two:2:throw");
  EXPECT_TRUE(fault::should_fail("a.one"));
  EXPECT_FALSE(fault::should_fail("b.two"));
  EXPECT_TRUE(fault::should_fail("b.two"));
}

TEST(FaultSpec, MalformedSpecsThrow) {
  EXPECT_THROW(fault::arm("nocolon"), Error);
  EXPECT_THROW(fault::arm("site:0"), Error);
  EXPECT_THROW(fault::arm("site:abc"), Error);
  EXPECT_THROW(fault::arm("site:1:explode"), Error);
  EXPECT_THROW(fault::arm(":3"), Error);
  fault::disarm();
}

TEST(FaultSpec, InjectThrowsTypedErrorOnce) {
  FaultGuard guard("inj.site:1");
  EXPECT_THROW(fault::inject("inj.site"), Error);
  EXPECT_NO_THROW(fault::inject("inj.site"));  // retry path sees success
}

// ---------------------------------------------------------------------------
// Result journal

TEST(Journal, RoundTripsRecordsInOrder) {
  TempDir dir;
  const std::string path = dir.path + "/j";
  {
    svc::ResultJournal j(path);
    EXPECT_TRUE(j.load().empty());  // missing file = empty journal
    j.append("key-a", ok_result("first\n"));
    j.append("key-b", ok_result("second\n"));
    svc::CachedResult with_err = ok_result("third\n");
    with_err.error = "warning: something\n";
    j.append("key-c", with_err);
  }
  svc::ResultJournal j(path);
  const auto records = j.load();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].key, "key-a");
  EXPECT_EQ(records[0].result.output, "first\n");
  EXPECT_EQ(records[0].result.status, "ok");
  EXPECT_EQ(records[0].result.exit_code, 0);
  EXPECT_EQ(records[1].key, "key-b");
  EXPECT_EQ(records[2].result.error, "warning: something\n");
  EXPECT_EQ(j.restored(), 3u);
  EXPECT_FALSE(j.recovered_corrupt_tail());
}

TEST(Journal, TruncatedTailKeepsValidPrefixAndHeals) {
  TempDir dir;
  const std::string path = dir.path + "/j";
  {
    svc::ResultJournal j(path);
    j.append("k1", ok_result("one\n"));
    j.append("k2", ok_result("two\n"));
    j.append("k3", ok_result("three\n"));
  }
  // Chop into the last record, as a crash mid-append would.
  const auto full = fs::file_size(path);
  fs::resize_file(path, full - 5);

  svc::ResultJournal j(path);
  const auto records = j.load();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_TRUE(j.recovered_corrupt_tail());
  EXPECT_LT(fs::file_size(path), full - 5);  // bad tail truncated away

  // The healed journal extends cleanly.
  j.append("k3", ok_result("three again\n"));
  svc::ResultJournal reread(path);
  const auto healed = reread.load();
  ASSERT_EQ(healed.size(), 3u);
  EXPECT_EQ(healed[2].result.output, "three again\n");
  EXPECT_FALSE(reread.recovered_corrupt_tail());
}

TEST(Journal, ChecksumMismatchStopsAtBadRecord) {
  TempDir dir;
  const std::string path = dir.path + "/j";
  {
    svc::ResultJournal j(path);
    j.append("k1", ok_result("one\n"));
    j.append("k2", ok_result("two\n"));
  }
  {
    // Flip one payload byte inside the last record.
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-2, std::ios::end);
    f.put('\xff');
  }
  svc::ResultJournal j(path);
  const auto records = j.load();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].key, "k1");
  EXPECT_TRUE(j.recovered_corrupt_tail());
}

TEST(Journal, UnrecognizableHeaderStartsOver) {
  TempDir dir;
  const std::string path = dir.path + "/j";
  {
    std::ofstream f(path);
    f << "this was never a journal";
  }
  svc::ResultJournal j(path);
  EXPECT_TRUE(j.load().empty());
  EXPECT_TRUE(j.recovered_corrupt_tail());
  EXPECT_FALSE(fs::exists(path));  // removed rather than guessed at
  j.append("k", ok_result("fresh\n"));
  svc::ResultJournal reread(path);
  EXPECT_EQ(reread.load().size(), 1u);
}

TEST(Journal, CompactionRewritesToLiveSet) {
  TempDir dir;
  const std::string path = dir.path + "/j";
  svc::ResultJournal j(path);
  for (int i = 0; i < 30; ++i) {
    j.append("hot-key", ok_result("version " + std::to_string(i) + "\n"));
  }
  EXPECT_TRUE(j.wants_compaction(1));
  const auto before = fs::file_size(path);
  j.compact({{"hot-key", ok_result("version 29\n")}});
  EXPECT_LT(fs::file_size(path), before);
  EXPECT_FALSE(j.wants_compaction(1));

  svc::ResultJournal reread(path);
  const auto records = reread.load();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].result.output, "version 29\n");
}

TEST(Journal, MidWriteFaultLeavesRecoverablePrefix) {
  TempDir dir;
  const std::string path = dir.path + "/j";
  {
    svc::ResultJournal j(path);
    j.append("k1", ok_result("one\n"));
    FaultGuard guard("journal.mid_write:1");
    EXPECT_THROW(j.append("k2", ok_result("two\n")), Error);
  }
  svc::ResultJournal j(path);
  const auto records = j.load();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].key, "k1");
  EXPECT_TRUE(j.recovered_corrupt_tail());
}

// The real thing: a child process dies from SIGKILL halfway through an
// append (half the record flushed to disk), and the parent recovers the
// valid prefix and keeps appending.
TEST(Journal, SigkillMidAppendSubprocessRecovery) {
  TempDir dir;
  const std::string path = dir.path + "/j";

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: one good record, then die mid-append exactly like kill -9.
    try {
      svc::ResultJournal j(path);
      j.append("survivor", ok_result("written before the crash\n"));
      fault::arm("journal.mid_write:1");
      try {
        j.append("victim", ok_result("never fully written\n"));
      } catch (const Error&) {
        // Half the record is on disk; now die for real.
        ::raise(SIGKILL);
      }
    } catch (...) {
    }
    _exit(3);  // only reached if the kill path failed
  }

  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);

  svc::ResultJournal j(path);
  const auto records = j.load();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].key, "survivor");
  EXPECT_TRUE(j.recovered_corrupt_tail());

  j.append("after-restart", ok_result("life goes on\n"));
  svc::ResultJournal reread(path);
  EXPECT_EQ(reread.load().size(), 2u);
}

// ---------------------------------------------------------------------------
// Persistent result cache

TEST(PersistentResultCache, RestoresAcrossInstances) {
  TempDir dir;
  const std::string path = dir.path + "/cache.jrnl";
  const std::string key(32, 'a');
  {
    svc::ResultCache cache(8, path);
    auto lookup = cache.acquire(key);
    ASSERT_EQ(lookup.role, svc::ResultCache::Role::kOwner);
    cache.complete(key,
                   std::make_shared<svc::CachedResult>(ok_result("warm\n")));
    EXPECT_EQ(cache.persisted(), 1u);
    EXPECT_EQ(cache.restored(), 0u);
  }
  svc::ResultCache cache(8, path);
  EXPECT_EQ(cache.restored(), 1u);
  auto lookup = cache.acquire(key);
  ASSERT_EQ(lookup.role, svc::ResultCache::Role::kHit);
  EXPECT_EQ(lookup.hit->output, "warm\n");
}

TEST(PersistentResultCache, JournalFaultDegradesButServesFromMemory) {
  TempDir dir;
  const std::string path = dir.path + "/cache.jrnl";
  const std::string key(32, 'b');
  FaultGuard guard("journal.write:1");
  svc::ResultCache cache(8, path);
  auto lookup = cache.acquire(key);
  ASSERT_EQ(lookup.role, svc::ResultCache::Role::kOwner);
  cache.complete(key,
                 std::make_shared<svc::CachedResult>(ok_result("memory\n")));
  EXPECT_TRUE(cache.journal_degraded());
  EXPECT_EQ(cache.persisted(), 0u);
  // The in-memory cache is unaffected by the dead journal.
  EXPECT_EQ(cache.acquire(key).role, svc::ResultCache::Role::kHit);
}

TEST(PersistentResultCache, OnlyOkResultsPersist) {
  TempDir dir;
  const std::string path = dir.path + "/cache.jrnl";
  const std::string key(32, 'c');
  {
    svc::ResultCache cache(8, path);
    auto lookup = cache.acquire(key);
    ASSERT_EQ(lookup.role, svc::ResultCache::Role::kOwner);
    auto failed = std::make_shared<svc::CachedResult>();
    failed->status = "error";
    failed->exit_code = 1;
    cache.complete(key, failed);
    EXPECT_EQ(cache.persisted(), 0u);
  }
  svc::ResultCache cache(8, path);
  EXPECT_EQ(cache.restored(), 0u);
}

TEST(PersistentResultCache, ServerRestartServesWarmCache) {
  TempDir dir;
  svc::Request req;
  req.verb = "evaluate";
  req.args = {"crc", "indexing"};
  req.params.scale = 0.0625;

  std::string want;
  {
    svc::ServerOptions options;
    options.cache_file = dir.path + "/daemon.jrnl";
    svc::Server server(std::move(options));
    const svc::Response first = server.execute(req);
    ASSERT_EQ(first.status, "ok");
    EXPECT_FALSE(first.result_cache_hit);
    EXPECT_GE(server.counters().persisted, 1u);
    want = first.output;
  }
  svc::ServerOptions options;
  options.cache_file = dir.path + "/daemon.jrnl";
  svc::Server server(std::move(options));
  EXPECT_GE(server.counters().restored, 1u);
  const svc::Response warm = server.execute(req);
  EXPECT_TRUE(warm.result_cache_hit);
  EXPECT_EQ(warm.output, want);  // byte-identical across the restart
}

// ---------------------------------------------------------------------------
// Deadlines and cancellation

TEST(Deadline, TimedOutRequestAnswersTypedAndFreesItsSlot) {
  svc::Server server(svc::ServerOptions{});
  svc::Request slow;
  slow.verb = "ping";
  slow.args = {"5000"};
  slow.timeout_ms = 80;

  const auto start = std::chrono::steady_clock::now();
  const svc::Response resp = server.execute(slow);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(resp.status, "deadline_exceeded");
  EXPECT_EQ(resp.exit_code, 124);
  EXPECT_NE(resp.error.find("deadline"), std::string::npos);
  EXPECT_GE(resp.server.timed_out, 1u);
  EXPECT_LT(elapsed, 3s);  // answered near the deadline, not after 5 s

  // The worker unwinds at its next chunk boundary and frees the slot; the
  // daemon then serves the next request normally.
  wait_until([&] { return server.counters().in_flight == 0; });
  svc::Request fast;
  fast.verb = "ping";
  EXPECT_EQ(server.execute(fast).status, "ok");
}

TEST(Deadline, CancelTokenSemantics) {
  CancelToken token;
  EXPECT_NO_THROW(token.check());
  token.set_timeout_ms(1);
  std::this_thread::sleep_for(5ms);
  EXPECT_TRUE(token.expired());
  try {
    token.check();
    FAIL() << "expected Cancelled";
  } catch (const Cancelled& c) {
    EXPECT_TRUE(c.deadline_exceeded());
  }
  // Explicit cancellation wins over the deadline when both apply.
  token.cancel();
  try {
    token.check();
    FAIL() << "expected Cancelled";
  } catch (const Cancelled& c) {
    EXPECT_FALSE(c.deadline_exceeded());
  }
}

TEST(Deadline, TimeoutRoundTripsThroughTheProtocol) {
  svc::Request req;
  req.verb = "evaluate";
  req.timeout_ms = 1234;
  const svc::Request decoded = svc::decode_request(svc::encode_request(req));
  EXPECT_EQ(decoded.timeout_ms, 1234u);

  // timeout_ms is execution policy, not request identity: the cache must
  // serve the same key regardless of the caller's patience.
  svc::Request other = req;
  other.timeout_ms = 9999;
  EXPECT_EQ(svc::canonical_request_key(req),
            svc::canonical_request_key(other));

  svc::Response resp;
  resp.status = "ok";
  resp.server.timed_out = 7;
  resp.server.cancelled = 3;
  resp.server.restored = 11;
  resp.server.persisted = 13;
  const svc::Response rt = svc::decode_response(svc::encode_response(resp));
  EXPECT_EQ(rt.server.timed_out, 7u);
  EXPECT_EQ(rt.server.cancelled, 3u);
  EXPECT_EQ(rt.server.restored, 11u);
  EXPECT_EQ(rt.server.persisted, 13u);
}

// ---------------------------------------------------------------------------
// Two-class priority scheduler

TEST(PriorityScheduler, InteractiveJumpsQueuedBatch) {
  ThreadPool pool(1);  // one worker: deterministic execution order
  svc::RequestScheduler sched(&pool, 8);

  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::atomic<bool> blocker_started{false};
  ASSERT_TRUE(sched.try_submit(
      [&] {
        blocker_started = true;
        gate.wait();
      },
      svc::Priority::kBatch));
  wait_until([&] { return blocker_started.load(); });

  std::mutex m;
  std::vector<std::string> order;
  const auto record = [&](const char* label) {
    std::lock_guard<std::mutex> lock(m);
    order.emplace_back(label);
  };
  ASSERT_TRUE(sched.try_submit([&] { record("batch"); },
                               svc::Priority::kBatch));
  ASSERT_TRUE(sched.try_submit([&] { record("interactive"); },
                               svc::Priority::kInteractive));

  release.set_value();
  wait_until([&] { return sched.in_flight() == 0; });
  ASSERT_EQ(order.size(), 2u);
  // The batch request was enqueued FIRST, but the interactive one runs
  // first: that is the whole point of the two classes.
  EXPECT_EQ(order[0], "interactive");
  EXPECT_EQ(order[1], "batch");
}

TEST(PriorityScheduler, AgedBatchBeatsFreshInteractive) {
  ThreadPool pool(1);
  svc::RequestScheduler sched(&pool, 8, std::chrono::milliseconds(0));

  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::atomic<bool> blocker_started{false};
  ASSERT_TRUE(sched.try_submit(
      [&] {
        blocker_started = true;
        gate.wait();
      },
      svc::Priority::kBatch));
  wait_until([&] { return blocker_started.load(); });

  std::mutex m;
  std::vector<std::string> order;
  const auto record = [&](const char* label) {
    std::lock_guard<std::mutex> lock(m);
    order.emplace_back(label);
  };
  ASSERT_TRUE(sched.try_submit([&] { record("batch"); },
                               svc::Priority::kBatch));
  std::this_thread::sleep_for(5ms);  // age the batch head past 0 ms
  ASSERT_TRUE(sched.try_submit([&] { record("interactive"); },
                               svc::Priority::kInteractive));

  release.set_value();
  wait_until([&] { return sched.in_flight() == 0; });
  ASSERT_EQ(order.size(), 2u);
  // With the aging threshold exceeded, the starved batch request wins.
  EXPECT_EQ(order[0], "batch");
  EXPECT_EQ(order[1], "interactive");
}

// ---------------------------------------------------------------------------
// Socket addressing: IPv6 and the abstract Unix namespace

TEST(Address, ResolvesFilesystemUnixPath) {
  const svc::UnixAddress ua = svc::resolve_unix("/tmp/canu-test.sock");
  EXPECT_FALSE(ua.abstract);
  EXPECT_EQ(ua.addr.sun_family, AF_UNIX);
  EXPECT_STREQ(ua.addr.sun_path, "/tmp/canu-test.sock");
}

TEST(Address, ResolvesAbstractNamespace) {
  const std::string name = "@canu-abstract-test";
  const svc::UnixAddress ua = svc::resolve_unix(name);
  EXPECT_TRUE(ua.abstract);
  EXPECT_EQ(ua.addr.sun_path[0], '\0');  // leading NUL marks the namespace
  EXPECT_EQ(std::memcmp(ua.addr.sun_path + 1, name.data() + 1,
                        name.size() - 1),
            0);
  EXPECT_EQ(ua.len, static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) +
                                           name.size()));
}

TEST(Address, RejectsBadUnixPaths) {
  EXPECT_THROW(svc::resolve_unix(""), Error);
  EXPECT_THROW(svc::resolve_unix("@"), Error);
  EXPECT_THROW(svc::resolve_unix(std::string(200, 'x')), Error);
}

TEST(Address, ResolvesIpv4AndIpv6Literals) {
  EXPECT_EQ(svc::resolve_tcp("127.0.0.1", 80).family, AF_INET);
  EXPECT_EQ(svc::resolve_tcp("::1", 80).family, AF_INET6);
  EXPECT_EQ(svc::resolve_tcp("[::1]", 80).family, AF_INET6);  // bracketed
  EXPECT_EQ(svc::resolve_tcp("[2001:db8::7]", 0).family, AF_INET6);
  EXPECT_THROW(svc::resolve_tcp("not-an-address", 80), Error);
  EXPECT_THROW(svc::resolve_tcp("[127.0.0.1", 80), Error);
}

TEST(ServerSocketRobust, AbstractUnixEndToEnd) {
  const std::string name =
      "@canu-fault-test-" + std::to_string(::getpid());
  svc::ServerOptions options;
  options.unix_socket = name;
  svc::Server server(std::move(options));
  server.start();

  svc::Endpoint endpoint;
  endpoint.unix_path = name;
  svc::Request req;
  req.verb = "ping";
  EXPECT_EQ(svc::Client(endpoint).call(req).status, "ok");
  server.stop();

  // Abstract names leave no filesystem entry and free on close: a second
  // daemon can bind the same name immediately.
  svc::ServerOptions again;
  again.unix_socket = name;
  svc::Server second(std::move(again));
  second.start();
  EXPECT_EQ(svc::Client(endpoint).call(req).status, "ok");
  second.stop();
}

TEST(ServerSocketRobust, Ipv6LoopbackEndToEnd) {
  svc::ServerOptions options;
  options.tcp_host = "::1";
  options.tcp_port = 0;
  svc::Server server(std::move(options));
  try {
    server.start();
  } catch (const Error& e) {
    GTEST_SKIP() << "IPv6 loopback unavailable: " << e.what();
  }
  svc::Endpoint endpoint;
  endpoint.host = "[::1]";
  endpoint.port = server.bound_tcp_port();
  svc::Request req;
  req.verb = "ping";
  const svc::Response resp = svc::Client(endpoint).call(req);
  EXPECT_EQ(resp.status, "ok");
  EXPECT_EQ(resp.output, "pong\n");
  server.stop();
}

// ---------------------------------------------------------------------------
// Socket fault injection + client retry

TEST(SocketFault, InjectedConnectFailureSurfacesAsError) {
  TempDir dir;
  svc::ServerOptions options;
  options.unix_socket = dir.path + "/s";
  svc::Server server(std::move(options));
  server.start();

  svc::Endpoint endpoint;
  endpoint.unix_path = dir.path + "/s";
  svc::Request req;
  req.verb = "ping";
  {
    FaultGuard guard("socket.connect:1");
    EXPECT_THROW(svc::Client(endpoint).call(req), Error);
  }
  // The daemon never saw the doomed connection; the next one works.
  EXPECT_EQ(svc::Client(endpoint).call(req).status, "ok");
  server.stop();
}

TEST(SocketFault, RetryRecoversFromInjectedConnectFault) {
  TempDir dir;
  svc::ServerOptions options;
  options.unix_socket = dir.path + "/s";
  svc::Server server(std::move(options));
  server.start();

  svc::Endpoint endpoint;
  endpoint.unix_path = dir.path + "/s";
  svc::Request req;
  req.verb = "ping";
  svc::RetryPolicy policy;
  policy.attempts = 3;
  policy.base = std::chrono::milliseconds(1);
  policy.cap = std::chrono::milliseconds(2);

  FaultGuard guard("socket.connect:1");
  unsigned attempts_made = 0;
  const svc::Response resp =
      svc::Client(endpoint).call_with_retry(req, policy, &attempts_made);
  EXPECT_EQ(resp.status, "ok");
  EXPECT_EQ(attempts_made, 2u);  // one injected failure, one success
  server.stop();
}

TEST(SocketFault, ReadFaultDropsOneConnectionNotTheDaemon) {
  TempDir dir;
  svc::ServerOptions options;
  options.unix_socket = dir.path + "/s";
  svc::Server server(std::move(options));
  server.start();

  svc::Endpoint endpoint;
  endpoint.unix_path = dir.path + "/s";
  svc::Request req;
  req.verb = "ping";
  {
    // First read in the exchange is the daemon reading the request header;
    // it fails, the daemon drops that connection, the client sees EOF.
    FaultGuard guard("socket.read:1");
    EXPECT_THROW(svc::Client(endpoint).call(req), Error);
  }
  EXPECT_EQ(svc::Client(endpoint).call(req).status, "ok");
  server.stop();
}

TEST(Retry, ExhaustsAttemptsAgainstDeadEndpointThenThrows) {
  svc::Endpoint endpoint;
  endpoint.unix_path = "/tmp/canu-no-such-daemon.sock";
  svc::Request req;
  req.verb = "ping";
  svc::RetryPolicy policy;
  policy.attempts = 3;
  policy.base = std::chrono::milliseconds(1);
  policy.cap = std::chrono::milliseconds(2);
  unsigned attempts_made = 0;
  EXPECT_THROW(
      svc::Client(endpoint).call_with_retry(req, policy, &attempts_made),
      Error);
  EXPECT_EQ(attempts_made, 3u);
}

TEST(Retry, BudgetCapsTotalRetryTime) {
  svc::Endpoint endpoint;
  endpoint.unix_path = "/tmp/canu-no-such-daemon.sock";
  svc::Request req;
  req.verb = "ping";
  svc::RetryPolicy policy;
  policy.attempts = 1000;
  policy.base = std::chrono::milliseconds(20);
  policy.cap = std::chrono::milliseconds(50);
  policy.budget = std::chrono::milliseconds(100);
  const auto start = std::chrono::steady_clock::now();
  unsigned attempts_made = 0;
  EXPECT_THROW(
      svc::Client(endpoint).call_with_retry(req, policy, &attempts_made),
      Error);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, 2s);  // nowhere near 1000 × base
  EXPECT_GE(attempts_made, 2u);
  EXPECT_LT(attempts_made, 100u);
}

TEST(Retry, OverloadedReplyIsRetriedUntilCapacityFrees) {
  svc::ServerOptions options;
  options.threads = 2;
  options.queue_capacity = 1;
  svc::Server server(std::move(options));

  svc::Request slow;
  slow.verb = "ping";
  slow.args = {"300"};  // hold the only slot for 300 ms
  std::thread holder([&] {
    EXPECT_EQ(server.execute(slow).status, "ok");
  });
  wait_until([&] { return server.counters().in_flight >= 1; });

  svc::Request fast;
  fast.verb = "ping";
  // In-process loopback equivalent of call_with_retry's overload handling:
  // keep resubmitting with backoff until the slot frees.
  svc::Response resp;
  for (int attempt = 0; attempt < 50; ++attempt) {
    resp = server.execute(fast);
    if (resp.status != "overloaded") break;
    EXPECT_EQ(resp.exit_code, 75);
    std::this_thread::sleep_for(25ms);
  }
  EXPECT_EQ(resp.status, "ok");
  EXPECT_GE(server.counters().rejected, 1u);
  holder.join();
}

// ---------------------------------------------------------------------------
// Rollup manifest

TEST(Rollup, WritesPerVerbStatsAndRatios) {
  TempDir dir;
  svc::Server server(svc::ServerOptions{});
  svc::Request ping;
  ping.verb = "ping";
  server.execute(ping);
  svc::Request version;
  version.verb = "version";
  server.execute(version);
  server.execute(version);

  const std::string path = dir.path + "/rollup.json";
  server.write_rollup(path);
  std::ifstream is(path);
  std::string json((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  for (const char* needle :
       {"\"verbs\"", "\"ping\"", "\"version\"", "\"p50_ms\"", "\"p99_ms\"",
        "\"cache_hit_ratio\"", "\"timed_out\"", "\"cancelled\"",
        "\"admitted\""}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
  EXPECT_THROW(server.write_rollup(dir.path + "/no/such/dir/x.json"), Error);
}

// ---------------------------------------------------------------------------
// Trace-cache corruption recovery

Trace make_test_trace(std::size_t refs) {
  Trace trace("fault-test");
  for (std::size_t i = 0; i < refs; ++i) {
    // Large stride: multi-byte deltas, so truncation always lands mid-record.
    trace.append(0x10000 + i * 0x10000, AccessType::kRead);
  }
  return trace;
}

TEST(TraceCacheCorruption, TruncatedEntryIsDiscardedAndRegenerated) {
  TempDir dir;
  TraceCache cache(dir.path);
  const Trace trace = make_test_trace(200);
  cache.store(trace, "victim");
  ASSERT_TRUE(cache.contains("victim"));

  // Keep only the first 30 bytes: the header survives, the records do not —
  // exactly what an interrupted copy or a crashed writer leaves behind.
  const std::string path = dir.path + "/victim.ctrc";
  fs::resize_file(path, 30);

  EXPECT_EQ(cache.open("victim"), nullptr);      // corrupt = miss
  EXPECT_FALSE(fs::exists(path));                // and the entry is gone
  EXPECT_FALSE(cache.contains("victim"));

  // The regeneration path: store again, read back intact.
  cache.store(trace, "victim");
  auto source = cache.open("victim");
  ASSERT_NE(source, nullptr);
  EXPECT_EQ(source->size_hint(), trace.size());
}

TEST(TraceCacheCorruption, LoadRejectsMidRecordTruncation) {
  TempDir dir;
  TraceCache cache(dir.path);
  const Trace trace = make_test_trace(100);
  cache.store(trace, "victim");

  const std::string path = dir.path + "/victim.ctrc";
  fs::resize_file(path, fs::file_size(path) - 3);  // cut into the last record

  Trace out;
  EXPECT_FALSE(cache.load("victim", out));  // full decode catches the cut
  EXPECT_FALSE(fs::exists(path));

  cache.store(trace, "victim");
  ASSERT_TRUE(cache.load("victim", out));
  ASSERT_EQ(out.size(), trace.size());
  EXPECT_EQ(out.refs()[99].addr, trace.refs()[99].addr);
}

TEST(TraceCacheCorruption, ValidateTraceFileChecksBounds) {
  TempDir dir;
  const std::string path = dir.path + "/t.ctrc";
  const Trace trace = make_test_trace(50);
  save_trace_compressed(trace, path);
  EXPECT_NO_THROW(validate_trace_file(path));

  fs::resize_file(path, 25);
  EXPECT_THROW(validate_trace_file(path), Error);

  std::ofstream(path, std::ios::trunc) << "garbage, not a trace at all";
  EXPECT_THROW(validate_trace_file(path), Error);
  EXPECT_THROW(validate_trace_file(dir.path + "/missing.ctrc"), Error);
}

}  // namespace
}  // namespace canu
