// Unit tests for src/util: bit manipulation, primes, deterministic RNG,
// table/CSV rendering and the thread pool.
#include <atomic>
#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "util/bitops.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/prime.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace canu {
namespace {

// ------------------------------------------------------------- bitops ----

TEST(Bitops, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(1023));
  EXPECT_TRUE(is_pow2(std::uint64_t{1} << 63));
}

TEST(Bitops, Log2Floor) {
  EXPECT_EQ(log2_floor(1), 0u);
  EXPECT_EQ(log2_floor(2), 1u);
  EXPECT_EQ(log2_floor(3), 1u);
  EXPECT_EQ(log2_floor(1024), 10u);
  EXPECT_EQ(log2_floor(1025), 10u);
  EXPECT_EQ(log2_floor(~std::uint64_t{0}), 63u);
}

TEST(Bitops, GetBit) {
  EXPECT_EQ(get_bit(0b1010, 0), 0u);
  EXPECT_EQ(get_bit(0b1010, 1), 1u);
  EXPECT_EQ(get_bit(0b1010, 2), 0u);
  EXPECT_EQ(get_bit(0b1010, 3), 1u);
  EXPECT_EQ(get_bit(std::uint64_t{1} << 63, 63), 1u);
}

TEST(Bitops, BitField) {
  EXPECT_EQ(bit_field(0xabcd, 0, 4), 0xdu);
  EXPECT_EQ(bit_field(0xabcd, 4, 4), 0xcu);
  EXPECT_EQ(bit_field(0xabcd, 8, 8), 0xabu);
  EXPECT_EQ(bit_field(0xabcd, 0, 0), 0u);
  EXPECT_EQ(bit_field(~std::uint64_t{0}, 0, 64), ~std::uint64_t{0});
}

TEST(Bitops, LowMask) {
  EXPECT_EQ(low_mask(0), 0u);
  EXPECT_EQ(low_mask(4), 0xfu);
  EXPECT_EQ(low_mask(10), 0x3ffu);
  EXPECT_EQ(low_mask(64), ~std::uint64_t{0});
}

TEST(Bitops, GatherBits) {
  // Bits 1 and 3 of 0b1010 are both 1 -> result 0b11.
  EXPECT_EQ(gather_bits(0b1010, {1, 3}), 0b11u);
  EXPECT_EQ(gather_bits(0b1010, {0, 2}), 0b00u);
  EXPECT_EQ(gather_bits(0b1010, {3, 1}), 0b11u);
  EXPECT_EQ(gather_bits(0xff, {}), 0u);
  // Order matters: positions[0] becomes the LSB.
  EXPECT_EQ(gather_bits(0b0010, {1, 5}), 0b01u);
  EXPECT_EQ(gather_bits(0b100000, {1, 5}), 0b10u);
}

TEST(Bitops, NextPow2) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1024), 1024u);
  EXPECT_EQ(next_pow2(1025), 2048u);
}

// -------------------------------------------------------------- prime ----

TEST(Prime, SmallValues) {
  EXPECT_FALSE(is_prime(0));
  EXPECT_FALSE(is_prime(1));
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(3));
  EXPECT_FALSE(is_prime(4));
  EXPECT_TRUE(is_prime(5));
  EXPECT_FALSE(is_prime(9));
  EXPECT_TRUE(is_prime(97));
}

TEST(Prime, LargestPrimeLe) {
  // The paper's configuration: 1021 is the largest prime <= 1024 sets.
  EXPECT_EQ(largest_prime_le(1024), 1021u);
  EXPECT_EQ(largest_prime_le(2), 2u);
  EXPECT_EQ(largest_prime_le(3), 3u);
  EXPECT_EQ(largest_prime_le(4), 3u);
  EXPECT_EQ(largest_prime_le(128), 127u);
  EXPECT_EQ(largest_prime_le(512), 509u);
}

TEST(Prime, SmallestPrimeGe) {
  EXPECT_EQ(smallest_prime_ge(1024), 1031u);
  EXPECT_EQ(smallest_prime_ge(2), 2u);
  EXPECT_EQ(smallest_prime_ge(4), 5u);
}

TEST(Prime, LargestPrimeLeThrowsBelowTwo) {
  EXPECT_THROW(largest_prime_le(1), Error);
}

// ---------------------------------------------------------------- rng ----

TEST(Rng, SplitMixDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, XoshiroDeterministic) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 4);
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256 rng(99);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowZeroIsZero) {
  Xoshiro256 rng(99);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(5);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Rng, NormalRoughMoments) {
  Xoshiro256 rng(5);
  double sum = 0, sum2 = 0;
  const int n = 40'000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

// -------------------------------------------------------------- table ----

TEST(TextTable, RendersAlignedColumns) {
  TextTable t;
  t.set_header({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TextTable, RowArityMismatchThrows) {
  TextTable t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), Error);
}

TEST(TextTable, HeaderAfterRowsThrows) {
  TextTable t;
  t.set_header({"a"});
  t.add_row({"x"});
  EXPECT_THROW(t.set_header({"b"}), Error);
}

TEST(TextTable, NumFormatsNan) {
  EXPECT_EQ(TextTable::num(std::nan(""), 2), "n/a");
  EXPECT_EQ(TextTable::num(1.234, 2), "1.23");
  EXPECT_EQ(TextTable::num(-5.0, 1), "-5.0");
}

// ---------------------------------------------------------------- csv ----

TEST(Csv, EscapesSpecials) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesRows) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"a", "b,c"});
  w.write_row({"1", "2"});
  EXPECT_EQ(os.str(), "a,\"b,c\"\n1,2\n");
}

// --------------------------------------------------------- thread pool ----

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ParallelForCoversAllIndexes) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(8,
                        [&](std::size_t i) {
                          if (i == 3) throw Error("boom");
                        }),
      Error);
}

TEST(ThreadPool, SizeDefaultsToHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

// Exception audit (DESIGN.md §9): a throwing task must neither deadlock
// the pool nor lose queued work — every other index still runs, the first
// error is rethrown after all complete, and the pool stays usable.
TEST(ThreadPool, ThrowingTaskDrainsQueueAndPoolSurvives) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> ran(64);
  EXPECT_THROW(pool.parallel_for(64,
                                 [&](std::size_t i) {
                                   ran[i]++;
                                   if (i % 7 == 3) throw Error("boom");
                                 }),
               Error);
  for (std::size_t i = 0; i < ran.size(); ++i) {
    EXPECT_EQ(ran[i].load(), 1) << "index " << i << " lost after a throw";
  }
  // The pool must still execute fresh work after the failed batch.
  std::atomic<int> after{0};
  pool.parallel_for(16, [&](std::size_t) { after++; });
  EXPECT_EQ(after.load(), 16);
  auto f = pool.submit([] { return 7; });
  EXPECT_EQ(f.get(), 7);
}

TEST(ThreadPool, SubmitCapturesExceptionInFuture) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw Error("task failed"); });
  EXPECT_THROW(f.get(), Error);
  // Worker survived the throwing task.
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

// Nested fan-out on one pool: a task running on a worker issues its own
// parallel_for against the same pool. Waiters help run queued tasks, so
// this completes even when the nesting width exceeds the worker count
// (the old blocking wait deadlocked here).
TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> leaves{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { leaves++; });
  });
  EXPECT_EQ(leaves.load(), 64);
}

TEST(ThreadPool, NestedExceptionPropagatesThroughBothLevels) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(4,
                                 [&](std::size_t i) {
                                   pool.parallel_for(4, [&](std::size_t j) {
                                     if (i == 1 && j == 2) throw Error("deep");
                                   });
                                 }),
               Error);
  // Still alive afterwards.
  std::atomic<int> n{0};
  pool.parallel_for(4, [&](std::size_t) { n++; });
  EXPECT_EQ(n.load(), 4);
}

TEST(TaskGroupTest, SerialModeDefersExceptionToWait) {
  TaskGroup group(nullptr);
  int ran = 0;
  group.run([&] { ran++; });
  group.run([&] { throw Error("serial boom"); });
  group.run([&] { ran++; });
  EXPECT_EQ(ran, 2);
  EXPECT_THROW(group.wait(), Error);
}

TEST(ResolveThreadCount, ExplicitRequestWins) {
  EXPECT_EQ(resolve_thread_count(3), 3u);
  EXPECT_GE(resolve_thread_count(0), 1u);
}

// -------------------------------------------------------------- error ----

TEST(Error, CheckMacroThrowsWithContext) {
  try {
    CANU_CHECK_MSG(1 == 2, "value was " << 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("value was 42"), std::string::npos);
  }
}

TEST(Error, CheckPassesQuietly) {
  EXPECT_NO_THROW(CANU_CHECK(2 + 2 == 4));
}

}  // namespace
}  // namespace canu
