// Tests for src/workloads: registry integrity, determinism and per-kernel
// access-pattern sanity (each kernel must look like its namesake).
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "trace/trace_stats.hpp"
#include "util/error.hpp"
#include "workloads/workload.hpp"

namespace canu {
namespace {

WorkloadParams small_params() {
  WorkloadParams p;
  p.scale = 0.25;  // keep the parameterized sweeps fast
  return p;
}

// ----------------------------------------------------------- registry ----

TEST(Registry, ContainsAllPaperBenchmarks) {
  for (const std::string& name : paper_mibench_set()) {
    EXPECT_NE(find_workload(name), nullptr) << name;
  }
  for (const std::string& name : paper_spec_set()) {
    EXPECT_NE(find_workload(name), nullptr) << name;
  }
  EXPECT_EQ(paper_mibench_set().size(), 11u);
  EXPECT_EQ(paper_spec_set().size(), 10u);
}

TEST(Registry, UnknownNameHandling) {
  EXPECT_EQ(find_workload("not_a_workload"), nullptr);
  EXPECT_THROW(generate_workload("not_a_workload"), Error);
}

TEST(Registry, SuiteFilterWorks) {
  const auto mibench = workload_names("mibench");
  EXPECT_EQ(mibench.size(), 11u);
  const auto extra = workload_names("mibench_extra");
  EXPECT_EQ(extra.size(), 4u);
  const auto spec = workload_names("spec2006");
  EXPECT_EQ(spec.size(), 10u);
  const auto synth = workload_names("synthetic");
  EXPECT_EQ(synth.size(), 5u);
  const auto all = workload_names();
  EXPECT_EQ(all.size(),
            mibench.size() + extra.size() + spec.size() + synth.size());
}

TEST(Registry, NamesAreUniqueAndDescribed) {
  std::vector<std::string> names;
  for (const WorkloadInfo& w : all_workloads()) {
    names.push_back(w.name);
    EXPECT_FALSE(w.description.empty()) << w.name;
    EXPECT_FALSE(w.suite.empty()) << w.name;
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
}

// --------------------------------------- generic properties (TEST_P) ----

class WorkloadProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadProperty, Deterministic) {
  const WorkloadParams p = small_params();
  const Trace a = generate_workload(GetParam(), p);
  const Trace b = generate_workload(GetParam(), p);
  EXPECT_EQ(a, b) << "same params must give identical traces";
}

TEST_P(WorkloadProperty, SeedChangesTrace) {
  WorkloadParams p1 = small_params(), p2 = small_params();
  p2.seed = 999;
  const Trace a = generate_workload(GetParam(), p1);
  const Trace b = generate_workload(GetParam(), p2);
  // Cache-oblivious kernels issue the same address stream regardless of the
  // input data (fft, sha, calculix's fixed CSR structure, libquantum's gate
  // strides, milc's lattice sweep, and the value-free synthetics); all
  // other kernels have data-dependent accesses and must diverge.
  static const std::set<std::string> kSeedInsensitive = {
      "fft",  "sha",  "calculix", "libquantum", "milc",
      "synthetic_sequential", "synthetic_strided"};
  if (kSeedInsensitive.count(GetParam())) {
    EXPECT_EQ(a, b);
  } else {
    EXPECT_NE(a, b);
  }
}

TEST_P(WorkloadProperty, NonTrivialSize) {
  const Trace t = generate_workload(GetParam(), small_params());
  EXPECT_GT(t.size(), 10'000u) << "trace too small to exercise a cache";
  EXPECT_LT(t.size(), 50'000'000u) << "trace unreasonably large";
}

TEST_P(WorkloadProperty, AddressesRespectBase) {
  WorkloadParams p = small_params();
  p.address_base = 0x7000'0000;
  const Trace t = generate_workload(GetParam(), p);
  for (const MemRef& r : t) {
    ASSERT_GE(r.addr, p.address_base);
  }
}

TEST_P(WorkloadProperty, ScaleGrowsTrace) {
  WorkloadParams small = small_params();
  WorkloadParams large = small_params();
  large.scale = 1.0;
  const Trace s = generate_workload(GetParam(), small);
  const Trace l = generate_workload(GetParam(), large);
  // Search kernels (astar) explore data-dependent frontiers, so growth is
  // not strictly monotone; everything else must not shrink.
  if (GetParam() == "astar") {
    EXPECT_GE(l.size() * 4, s.size()) << "scale collapsed the trace";
  } else {
    EXPECT_GE(l.size(), s.size()) << "scale must not shrink the trace";
  }
}

TEST_P(WorkloadProperty, StatsAreSane) {
  const Trace t = generate_workload(GetParam(), small_params());
  const TraceStats s = compute_trace_stats(t, 32);
  EXPECT_EQ(s.total, t.size());
  EXPECT_EQ(s.reads + s.writes + s.fetches, s.total);
  EXPECT_GT(s.unique_lines, 4u);
  EXPECT_GE(s.max_addr, s.min_addr);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadProperty,
                         ::testing::ValuesIn(workload_names()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

// ------------------------------------------------- per-kernel shapes ----

TEST(WorkloadShape, FftFootprintAndWrites) {
  const Trace t = generate_workload("fft", small_params());
  const TraceStats s = compute_trace_stats(t, 32);
  // FFT writes its butterflies back: a large write share.
  EXPECT_GT(static_cast<double>(s.writes) / static_cast<double>(s.total), 0.2);
}

TEST(WorkloadShape, CrcIsStreaming) {
  const Trace t = generate_workload("crc", small_params());
  const TraceStats s = compute_trace_stats(t, 32);
  // Dominant stride pattern: buffer byte + table lookup alternate.
  EXPECT_GT(s.unique_lines, 1000u) << "streaming buffer should be large";
  // Very few writes (only the accumulator).
  EXPECT_LT(static_cast<double>(s.writes) / static_cast<double>(s.total),
            0.01);
}

TEST(WorkloadShape, BitcountHasTinyFootprint) {
  const Trace t = generate_workload("bitcount", small_params());
  const TraceStats s = compute_trace_stats(t, 32);
  EXPECT_LT(s.footprint_bytes, 128 * 1024u)
      << "bitcount's working set must be small and hot";
  // Many passes -> total far exceeds unique addresses.
  EXPECT_GT(s.total, s.unique_addresses * 4);
}

TEST(WorkloadShape, SequentialIsPureStride) {
  const Trace t = generate_workload("synthetic_sequential", small_params());
  const TraceStats s = compute_trace_stats(t, 32);
  ASSERT_FALSE(s.top_strides.empty());
  EXPECT_EQ(s.top_strides[0].stride, 4);
  EXPECT_EQ(s.top_strides[0].count, s.total - 1);
}

TEST(WorkloadShape, StridedConflictsUnderModulo) {
  // The synthetic_strided workload is built to alias onto one set.
  const Trace t = generate_workload("synthetic_strided", small_params());
  std::vector<std::uint64_t> sets;
  for (const MemRef& r : t) {
    sets.push_back((r.addr >> 5) & 1023);
  }
  std::sort(sets.begin(), sets.end());
  sets.erase(std::unique(sets.begin(), sets.end()), sets.end());
  EXPECT_EQ(sets.size(), 1u) << "all accesses must alias to one set";
}

TEST(WorkloadShape, QsortActuallySorts) {
  // White-box determinism check: run the kernel twice and ensure the trace
  // ends with insertion-sorted small partitions (indirectly: the trace is
  // deterministic and large); the sortedness itself is validated by the
  // kernel's construction, exercised here for crash-freedom at scale 1.
  WorkloadParams p;
  p.scale = 0.5;
  const Trace t = generate_workload("qsort", p);
  EXPECT_GT(t.size(), 100'000u);
}

TEST(WorkloadShape, SjengFootprintDominatedByHashTable) {
  const Trace t = generate_workload("sjeng", small_params());
  const TraceStats s = compute_trace_stats(t, 32);
  // 2^15 16-byte entries = 512 KB across the key/data arrays; even the
  // scaled-down probe count touches well over 128 KB of distinct lines.
  EXPECT_GT(s.footprint_bytes, 128 * 1024u);
}

TEST(WorkloadShape, DisjointAddressBasesDontOverlap) {
  WorkloadParams p1 = small_params(), p2 = small_params();
  p1.address_base = 0x1000'0000;
  p2.address_base = 0x5000'0000;
  const Trace a = generate_workload("fft", p1);
  const Trace b = generate_workload("sha", p2);
  const TraceStats sa = compute_trace_stats(a, 32);
  const TraceStats sb = compute_trace_stats(b, 32);
  EXPECT_LT(sa.max_addr, 0x5000'0000u);
  EXPECT_GE(sb.min_addr, 0x5000'0000u);
}

}  // namespace
}  // namespace canu
