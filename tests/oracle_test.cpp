// Differential testing: a deliberately naive, obviously-correct reference
// simulator is replayed against SetAssocCache over randomized geometries,
// index functions and traces. Any divergence in the per-access hit/miss
// sequence is a bug in the optimized model (or the reference — either way,
// a finding).
#include <deque>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "cache/set_assoc_cache.hpp"
#include "indexing/factory.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace canu {
namespace {

/// Reference model: per set, an explicit LRU queue of line addresses,
/// implemented with std:: containers and no cleverness.
class NaiveLruCache {
 public:
  NaiveLruCache(std::uint64_t sets, unsigned ways, unsigned offset_bits,
                IndexFunctionPtr fn)
      : ways_(ways), offset_bits_(offset_bits), fn_(std::move(fn)),
        sets_(sets) {}

  bool access(std::uint64_t addr) {
    const std::uint64_t set = fn_->index(addr);
    const std::uint64_t line = addr >> offset_bits_;
    auto& q = queues_[set];
    for (auto it = q.begin(); it != q.end(); ++it) {
      if (*it == line) {
        q.erase(it);
        q.push_front(line);  // most-recently-used at the front
        return true;
      }
    }
    q.push_front(line);
    if (q.size() > ways_) q.pop_back();
    (void)sets_;
    return false;
  }

 private:
  unsigned ways_;
  unsigned offset_bits_;
  IndexFunctionPtr fn_;
  std::uint64_t sets_;
  std::map<std::uint64_t, std::deque<std::uint64_t>> queues_;
};

struct OracleCase {
  std::uint64_t size_bytes;
  std::uint64_t line;
  unsigned ways;
  IndexScheme scheme;
};

class OracleDifferential : public ::testing::TestWithParam<OracleCase> {};

TEST_P(OracleDifferential, HitMissSequencesAgree) {
  const OracleCase c = GetParam();
  const CacheGeometry g{c.size_bytes, c.line, c.ways};

  // Random trace with enough locality to produce hits.
  Trace trace;
  Xoshiro256 rng(0xabc ^ c.size_bytes ^ c.ways);
  const std::uint64_t lines = g.lines() * 4;
  for (int i = 0; i < 30'000; ++i) {
    const std::uint64_t line = rng.below(4) == 0
                                   ? rng.below(lines)
                                   : rng.below(lines / 8);  // hot subset
    trace.append(0x10'0000 + line * c.line + rng.below(c.line),
                 AccessType::kRead);
  }

  auto fn = make_index_function(c.scheme, g.sets(), g.offset_bits(), &trace);
  SetAssocCache fast(g, fn);
  NaiveLruCache slow(g.sets(), g.ways, g.offset_bits(), fn);

  std::uint64_t divergences = 0;
  for (const MemRef& r : trace) {
    const bool fast_hit = fast.access(r.addr, r.type).hit;
    const bool slow_hit = slow.access(r.addr);
    if (fast_hit != slow_hit) ++divergences;
  }
  EXPECT_EQ(divergences, 0u)
      << "optimized model diverged from the naive reference";
  EXPECT_GT(fast.stats().hits, 0u) << "trace produced no hits — weak test";
  EXPECT_GT(fast.stats().misses, 0u);
}

std::vector<OracleCase> oracle_cases() {
  std::vector<OracleCase> cases;
  const IndexScheme schemes[] = {IndexScheme::kModulo, IndexScheme::kXor,
                                 IndexScheme::kOddMultiplier,
                                 IndexScheme::kPrimeModulo};
  for (const auto& [size, line, ways] :
       std::vector<std::tuple<std::uint64_t, std::uint64_t, unsigned>>{
           {2048, 32, 1},
           {4096, 32, 2},
           {8192, 64, 4},
           {4096, 16, 8},
           {32 * 1024, 32, 1},
       }) {
    for (IndexScheme s : schemes) {
      cases.push_back({size, line, ways, s});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    RandomConfigs, OracleDifferential, ::testing::ValuesIn(oracle_cases()),
    [](const ::testing::TestParamInfo<OracleCase>& info) {
      return "s" + std::to_string(info.param.size_bytes) + "_l" +
             std::to_string(info.param.line) + "_w" +
             std::to_string(info.param.ways) + "_" +
             index_scheme_name(info.param.scheme);
    });

}  // namespace
}  // namespace canu
