// Unit tests for src/stats: central moments, the FHS/FMS/LAS classification
// and the percent-change helpers used by every figure.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "stats/moments.hpp"
#include "stats/uniformity.hpp"
#include "util/rng.hpp"

namespace canu {
namespace {

// ------------------------------------------------------------ moments ----

TEST(Moments, ConstantSeries) {
  const std::vector<double> v(100, 5.0);
  const Moments m = compute_moments(v);
  EXPECT_DOUBLE_EQ(m.mean, 5.0);
  EXPECT_DOUBLE_EQ(m.variance, 0.0);
  EXPECT_DOUBLE_EQ(m.skewness, 0.0);
  EXPECT_DOUBLE_EQ(m.kurtosis, 0.0);  // degenerate: defined as 0
}

TEST(Moments, HandComputedSmallCase) {
  // {1, 2, 3, 4}: mean 2.5, population variance 1.25.
  const std::vector<double> v = {1, 2, 3, 4};
  const Moments m = compute_moments(v);
  EXPECT_DOUBLE_EQ(m.mean, 2.5);
  EXPECT_DOUBLE_EQ(m.variance, 1.25);
  EXPECT_DOUBLE_EQ(m.skewness, 0.0);  // symmetric
  // m4 = mean of d^4 with d in {±1.5, ±0.5}: (2*5.0625+2*0.0625)/4 = 2.5625
  EXPECT_NEAR(m.kurtosis, 2.5625 / (1.25 * 1.25), 1e-12);
}

TEST(Moments, RightSkewPositive) {
  // A long right tail gives positive skewness.
  const std::vector<double> v = {1, 1, 1, 1, 1, 1, 1, 1, 1, 100};
  EXPECT_GT(compute_moments(v).skewness, 2.0);
}

TEST(Moments, LeftSkewNegative) {
  const std::vector<double> v = {100, 100, 100, 100, 100, 1};
  EXPECT_LT(compute_moments(v).skewness, 0.0);
}

TEST(Moments, UniformDistributionLowKurtosis) {
  // Continuous uniform has kurtosis 1.8 (excess -1.2) — the "flat" extreme
  // the paper refers to; a peaked distribution is far above 3.
  Xoshiro256 rng(3);
  std::vector<double> uniform(20'000);
  for (double& x : uniform) x = rng.uniform();
  EXPECT_NEAR(compute_moments(uniform).kurtosis, 1.8, 0.1);
}

TEST(Moments, PeakedDistributionHighKurtosis) {
  // Mostly identical values with rare extreme outliers -> sharp peak,
  // long tail, kurtosis far above the normal distribution's 3.
  Xoshiro256 rng(4);
  std::vector<double> peaked(20'000, 10.0);
  for (int i = 0; i < 20; ++i) peaked[rng.below(peaked.size())] = 10'000;
  EXPECT_GT(compute_moments(peaked).kurtosis, 50.0);
}

TEST(Moments, NormalKurtosisNearThree) {
  Xoshiro256 rng(5);
  std::vector<double> normal(50'000);
  for (double& x : normal) x = rng.normal();
  // Irwin–Hall(4) approximation is slightly platykurtic (~2.5-2.9).
  const Moments m = compute_moments(normal);
  EXPECT_GT(m.kurtosis, 2.3);
  EXPECT_LT(m.kurtosis, 3.3);
  EXPECT_NEAR(m.excess_kurtosis, m.kurtosis - 3.0, 1e-12);
}

TEST(Moments, CountOverloadMatchesDoubleOverload) {
  const std::vector<std::uint64_t> counts = {3, 1, 4, 1, 5, 9, 2, 6};
  const std::vector<double> doubles(counts.begin(), counts.end());
  const Moments a = compute_moments(std::span<const std::uint64_t>(counts));
  const Moments b = compute_moments(std::span<const double>(doubles));
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_DOUBLE_EQ(a.kurtosis, b.kurtosis);
}

TEST(Moments, EmptyInput) {
  const Moments m = compute_moments(std::span<const double>{});
  EXPECT_EQ(m.n, 0u);
  EXPECT_DOUBLE_EQ(m.mean, 0.0);
}

// ---------------------------------------------------- percent helpers ----

TEST(PercentHelpers, Reduction) {
  EXPECT_DOUBLE_EQ(percent_reduction(10.0, 5.0), 50.0);
  EXPECT_DOUBLE_EQ(percent_reduction(10.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(percent_reduction(10.0, 20.0), -100.0);
  EXPECT_TRUE(std::isnan(percent_reduction(0.0, 1.0)));
}

TEST(PercentHelpers, Increase) {
  EXPECT_DOUBLE_EQ(percent_increase(10.0, 15.0), 50.0);
  EXPECT_DOUBLE_EQ(percent_increase(10.0, 5.0), -50.0);
  EXPECT_TRUE(std::isnan(percent_increase(0.0, 1.0)));
}

// ----------------------------------------------------- FHS / FMS / LAS ----

TEST(Uniformity, ClassifiesCraftedDistribution) {
  // 8 sets: one monster set, others quiet.
  std::vector<SetStats> sets(8);
  for (auto& s : sets) {
    s.accesses = 10;
    s.hits = 10;
    s.misses = 0;
  }
  sets[0].accesses = 1000;
  sets[0].hits = 500;
  sets[0].misses = 500;

  const UniformityReport r = analyse_uniformity(sets);
  EXPECT_EQ(r.sets, 8u);
  // avg accesses = (1000 + 70)/8 = 133.75; the 7 quiet sets are < half.
  EXPECT_EQ(r.las, 7u);
  EXPECT_NEAR(r.frac_under_half, 7.0 / 8.0, 1e-12);
  EXPECT_NEAR(r.frac_over_twice, 1.0 / 8.0, 1e-12);
  // avg hits = 570/8 = 71.25 -> only set 0 has >= 2x.
  EXPECT_EQ(r.fhs, 1u);
  // avg misses = 62.5 -> only set 0.
  EXPECT_EQ(r.fms, 1u);
}

TEST(Uniformity, PerfectlyUniformHasNoOutliers) {
  std::vector<SetStats> sets(64);
  for (auto& s : sets) {
    s.accesses = 100;
    s.hits = 90;
    s.misses = 10;
  }
  const UniformityReport r = analyse_uniformity(sets);
  EXPECT_EQ(r.fhs, 0u);
  EXPECT_EQ(r.fms, 0u);
  EXPECT_EQ(r.las, 0u);
  EXPECT_DOUBLE_EQ(r.frac_under_half, 0.0);
  EXPECT_DOUBLE_EQ(r.access_moments.variance, 0.0);
}

TEST(Uniformity, ZeroMissesGiveNoFms) {
  std::vector<SetStats> sets(16);
  for (auto& s : sets) {
    s.accesses = 10;
    s.hits = 10;
  }
  const UniformityReport r = analyse_uniformity(sets);
  EXPECT_EQ(r.fms, 0u) << "every set >= 2*0 misses would be nonsense";
}

TEST(Uniformity, EmptySpan) {
  const UniformityReport r = analyse_uniformity({});
  EXPECT_EQ(r.sets, 0u);
}

TEST(Uniformity, ExtractCountsSelectsField) {
  std::vector<SetStats> sets(3);
  sets[1].misses = 7;
  sets[2].hits = 9;
  EXPECT_EQ(extract_counts(sets, SetCounter::kMisses),
            (std::vector<std::uint64_t>{0, 7, 0}));
  EXPECT_EQ(extract_counts(sets, SetCounter::kHits),
            (std::vector<std::uint64_t>{0, 0, 9}));
}

TEST(Uniformity, SkewedMissesRaiseMissKurtosis) {
  std::vector<SetStats> uniform(128), skewed(128);
  for (auto& s : uniform) s.misses = 50;
  for (std::size_t i = 0; i < skewed.size(); ++i) {
    skewed[i].misses = i < 4 ? 1500 : 3;
  }
  const auto ur = analyse_uniformity(uniform);
  const auto sr = analyse_uniformity(skewed);
  EXPECT_GT(sr.miss_moments.kurtosis, ur.miss_moments.kurtosis + 5.0);
  EXPECT_GT(sr.miss_moments.skewness, 3.0);
}

}  // namespace
}  // namespace canu
