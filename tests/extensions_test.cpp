// Tests for the extension organizations: the partner-index cache (the
// paper's own Figure 3 proposal, §1.2) and the skewed-associative cache.
#include <set>

#include <gtest/gtest.h>

#include "assoc/partner_cache.hpp"
#include "assoc/skewed_assoc.hpp"
#include "cache/set_assoc_cache.hpp"
#include "core/scheme.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace canu {
namespace {

constexpr std::uint64_t kLine = 32;
constexpr std::uint64_t kCache = 32 * 1024;

Trace random_trace(std::size_t n, std::uint64_t lines, std::uint64_t seed) {
  Trace t("random");
  Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    t.append(rng.below(lines) * kLine, AccessType::kRead);
  }
  return t;
}

// ------------------------------------------------------ partner cache ----

TEST(PartnerCache, NoLinksWithoutPressure) {
  PartnerCache cache(CacheGeometry::paper_l1());
  // Sequential sweep: one compulsory miss per set, never crossing the
  // hot threshold for any single set.
  for (std::uint64_t i = 0; i < 1024; ++i) cache.access(i * kLine);
  EXPECT_EQ(cache.links_formed(), 0u);
  EXPECT_EQ(cache.active_links(), 0u);
}

TEST(PartnerCache, HotSetAcquiresPartnerAndKeepsVictims) {
  PartnerConfig cfg;
  cfg.hot_threshold = 4;
  PartnerCache cache(CacheGeometry::paper_l1(), cfg);
  const std::uint64_t a = 0, b = kCache;  // both map to set 0
  // Thrash set 0 until it crosses the threshold and links a partner.
  for (int i = 0; i < 8; ++i) {
    cache.access(a);
    cache.access(b);
  }
  EXPECT_GE(cache.links_formed(), 1u);
  EXPECT_NE(cache.partner_of(0), PartnerCache::kNoPartner);
  // Once linked, the a/b ping-pong is absorbed: one lives in the primary
  // slot, the other in the partner slot.
  cache.reset_stats();
  for (int i = 0; i < 100; ++i) {
    cache.access(a);
    cache.access(b);
  }
  EXPECT_EQ(cache.stats().misses, 0u)
      << "partnered set must hold both conflicting lines";
  EXPECT_GT(cache.partner_hits(), 0u);
}

TEST(PartnerCache, PartnerHitCostsTwoCyclesAndPromotes) {
  PartnerConfig cfg;
  cfg.hot_threshold = 2;
  PartnerCache cache(CacheGeometry::paper_l1(), cfg);
  const std::uint64_t a = 0, b = kCache;
  for (int i = 0; i < 6; ++i) {
    cache.access(a);
    cache.access(b);
  }
  ASSERT_NE(cache.partner_of(0), PartnerCache::kNoPartner);
  // Steady state: alternating accesses hit; each partner hit promotes.
  const AccessOutcome out = cache.access(a);
  EXPECT_TRUE(out.hit);
  if (out.probes == 2) {
    EXPECT_EQ(out.cycles, 2u);
    EXPECT_TRUE(cache.access(a).hit);
    EXPECT_EQ(cache.access(a).probes, 1u) << "promotion failed";
  }
}

TEST(PartnerCache, LinksAreSymmetric) {
  PartnerConfig cfg;
  cfg.hot_threshold = 2;
  PartnerCache cache(CacheGeometry::paper_l1(), cfg);
  const std::uint64_t a = 0, b = kCache;
  for (int i = 0; i < 6; ++i) {
    cache.access(a);
    cache.access(b);
  }
  const std::uint32_t p = cache.partner_of(0);
  ASSERT_NE(p, PartnerCache::kNoPartner);
  EXPECT_EQ(cache.partner_of(p), 0u);
}

TEST(PartnerCache, BeatsDirectMappedOnHotConflicts) {
  // Hot conflicts concentrated in a few sets — the partner cache's design
  // target. Cold sets exist to donate slots.
  Trace t;
  Xoshiro256 rng(5);
  for (int i = 0; i < 200'000; ++i) {
    const std::uint64_t set = rng.below(32);  // 32 hot sets of 1024
    const std::uint64_t way = rng.below(2);
    t.append(set * kLine + way * kCache, AccessType::kRead);
  }
  SetAssocCache direct(CacheGeometry::paper_l1());
  PartnerCache partner(CacheGeometry::paper_l1());
  for (const MemRef& r : t) {
    direct.access(r.addr);
    partner.access(r.addr);
  }
  EXPECT_LT(partner.stats().misses, direct.stats().misses / 2)
      << "partnering must absorb two-way conflicts in hot sets";
}

TEST(PartnerCache, StatsInvariants) {
  const Trace t = random_trace(120'000, 4096, 7);
  PartnerCache cache(CacheGeometry::paper_l1());
  for (const MemRef& r : t) cache.access(r.addr);
  const CacheStats& s = cache.stats();
  EXPECT_EQ(s.accesses, t.size());
  EXPECT_EQ(s.hits + s.misses, s.accesses);
  EXPECT_EQ(s.hits, s.primary_hits + s.secondary_hits);
  EXPECT_LE(cache.fraction_partner_misses(), 1.0);
  EXPECT_LE(cache.fraction_partner_hits(), 1.0);
}

TEST(PartnerCache, EpochDecayDissolvesIdleLinks) {
  PartnerConfig cfg;
  cfg.hot_threshold = 2;
  cfg.epoch_length = 256;
  PartnerCache cache(CacheGeometry{1024, 32, 1}, cfg);  // 32 sets
  const std::uint64_t a = 0, b = 1024;  // conflict in set 0
  for (int i = 0; i < 6; ++i) {
    cache.access(a);
    cache.access(b);
  }
  ASSERT_GE(cache.active_links(), 1u);
  // Go quiet on set 0 for several epochs (misses only elsewhere would keep
  // links alive; pure hits elsewhere leave epoch_misses at 0).
  for (int i = 0; i < 2000; ++i) {
    cache.access(5 * 32);  // set 5, hit after first access
  }
  EXPECT_EQ(cache.active_links(), 0u) << "idle link must dissolve";
}

TEST(PartnerCache, RequiresDirectMappedArray) {
  EXPECT_THROW(PartnerCache(CacheGeometry{kCache, kLine, 2}), Error);
}

// ------------------------------------------------------ skewed cache ----

TEST(SkewedAssoc, GeometryAndName) {
  SkewedAssocCache cache(CacheGeometry{kCache, kLine, 2});
  EXPECT_EQ(cache.sets_per_bank(), 512u);
  EXPECT_EQ(cache.num_sets(), 1024u);
  EXPECT_EQ(cache.name(), "skewed2way");
  EXPECT_THROW(SkewedAssocCache(CacheGeometry{kCache, kLine, 1}), Error);
}

TEST(SkewedAssoc, BanksUseDifferentHashes) {
  SkewedAssocCache cache(CacheGeometry{kCache, kLine, 2});
  // For addresses with a nonzero tag the two banks should frequently
  // disagree on the set index.
  Xoshiro256 rng(9);
  int differ = 0;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t addr = rng.next() & 0x3fff'ffff;
    if (cache.skew_index(0, addr) != cache.skew_index(1, addr)) ++differ;
  }
  EXPECT_GT(differ, 900);
}

TEST(SkewedAssoc, SameLineSameSlots) {
  SkewedAssocCache cache(CacheGeometry{kCache, kLine, 2});
  for (std::uint64_t off = 0; off < kLine; ++off) {
    EXPECT_EQ(cache.skew_index(0, 0xabcd00 + off),
              cache.skew_index(0, 0xabcd00));
    EXPECT_EQ(cache.skew_index(1, 0xabcd00 + off),
              cache.skew_index(1, 0xabcd00));
  }
}

TEST(SkewedAssoc, BreaksModuloConflictSets) {
  // Lines at 32KB stride all collide in a direct-mapped cache; the skewed
  // cache disperses them across bank-1 slots.
  SkewedAssocCache skewed(CacheGeometry{kCache, kLine, 2});
  SetAssocCache direct(CacheGeometry::paper_l1());
  Trace t;
  for (int rep = 0; rep < 5000; ++rep) {
    for (std::uint64_t w = 0; w < 4; ++w) {
      t.append(w * kCache, AccessType::kRead);
    }
  }
  for (const MemRef& r : t) {
    skewed.access(r.addr);
    direct.access(r.addr);
  }
  EXPECT_EQ(direct.stats().hits, 0u) << "direct-mapped must thrash";
  EXPECT_GT(skewed.stats().hit_rate(), 0.5);
}

TEST(SkewedAssoc, TracksTwoWayOnRandomTraces) {
  const Trace t = random_trace(200'000, 2048, 11);
  SkewedAssocCache skewed(CacheGeometry{kCache, kLine, 2});
  SetAssocCache twoway(CacheGeometry{kCache, kLine, 2});
  for (const MemRef& r : t) {
    skewed.access(r.addr);
    twoway.access(r.addr);
  }
  // Skewing should be at least as good as conventional 2-way here (random
  // traces have no adversarial structure; allow a small tolerance).
  EXPECT_LE(skewed.stats().misses, twoway.stats().misses * 102 / 100);
}

TEST(SkewedAssoc, StatsInvariants) {
  const Trace t = random_trace(80'000, 4096, 13);
  SkewedAssocCache cache(CacheGeometry{kCache, kLine, 4});
  for (const MemRef& r : t) cache.access(r.addr);
  const CacheStats& s = cache.stats();
  EXPECT_EQ(s.accesses, t.size());
  EXPECT_EQ(s.hits + s.misses, s.accesses);
  std::uint64_t per_set_hits = 0, per_set_misses = 0;
  for (const SetStats& ss : cache.set_stats()) {
    per_set_hits += ss.hits;
    per_set_misses += ss.misses;
  }
  EXPECT_EQ(per_set_hits, s.hits);
  EXPECT_EQ(per_set_misses, s.misses);
}

// ------------------------------------------------------ scheme factory ----

TEST(ExtensionSchemes, FactoryBuildsAndLabels) {
  EXPECT_EQ(SchemeSpec::partner_cache().label(), "partner");
  EXPECT_EQ(SchemeSpec::skewed_assoc(2).label(), "skewed2way");
  EXPECT_EQ(SchemeSpec::skewed_assoc(4).label(), "skewed4way");

  for (const SchemeSpec& spec :
       {SchemeSpec::partner_cache(), SchemeSpec::skewed_assoc(2)}) {
    auto model = build_l1_model(spec, CacheGeometry::paper_l1(), nullptr);
    ASSERT_NE(model, nullptr);
    model->access(0x1234);
    EXPECT_EQ(model->stats().accesses, 1u);
  }
}

}  // namespace
}  // namespace canu
