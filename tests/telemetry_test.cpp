// Tests for the always-on service telemetry primitives (obs/telemetry.hpp)
// and the daemon-side registry (svc/telemetry.hpp): histogram bucket math
// and quantiles against a sorted-sample oracle, sliding-window decay under
// a fake clock, the request classification invariant, and the JSON /
// Prometheus renderings.
#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.hpp"
#include "obs/telemetry.hpp"
#include "svc/telemetry.hpp"

namespace canu {
namespace {

using obs::LatencyHistogram;
using obs::LatencySnapshot;
using obs::RateWindow;

TEST(LatencyBucketTest, ZeroAndSmallValues) {
  EXPECT_EQ(obs::latency_bucket(0), 0u);
  EXPECT_EQ(obs::latency_bucket_lower(0), 0u);
  // Every value maps into a bucket whose [lower, upper) range contains it.
  for (std::uint64_t v = 1; v < 4096; ++v) {
    const unsigned b = obs::latency_bucket(v);
    EXPECT_GE(v, obs::latency_bucket_lower(b)) << "v=" << v;
    EXPECT_LT(v, obs::latency_bucket_upper(b)) << "v=" << v;
  }
}

TEST(LatencyBucketTest, MonotoneAcrossMagnitudes) {
  unsigned prev = 0;
  for (int shift = 0; shift < 63; ++shift) {
    const std::uint64_t v = std::uint64_t{1} << shift;
    for (const std::uint64_t probe : {v, v + v / 3, v + v / 2}) {
      const unsigned b = obs::latency_bucket(probe);
      EXPECT_GE(b, prev) << "probe=" << probe;
      EXPECT_LT(b, obs::kLatencyBuckets);
      prev = b;
    }
  }
}

TEST(LatencyBucketTest, BoundsAlwaysOrdered) {
  for (unsigned b = 0; b < obs::kLatencyBuckets; ++b) {
    EXPECT_LT(obs::latency_bucket_lower(b), obs::latency_bucket_upper(b))
        << "bucket " << b;
  }
}

TEST(LatencyHistogramTest, EmptyQuantilesAreZero) {
  LatencyHistogram h;
  const LatencySnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.quantile(0.5), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(LatencyHistogramTest, QuantilesMatchSortedOracle) {
  // Log-uniform values spanning ~6 decades, the shape service latencies
  // take. The histogram's interpolated quantile must stay within the
  // sub-bucket resolution (1/16 relative) of the exact order statistic;
  // assert a slightly looser 1/8 to absorb interpolation at bucket edges.
  LatencyHistogram h;
  std::vector<std::uint64_t> values;
  std::uint64_t lcg = 12345;
  for (int i = 0; i < 20000; ++i) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    const double unit = static_cast<double>(lcg >> 11) / 9007199254740992.0;
    const auto v = static_cast<std::uint64_t>(std::pow(10.0, 2 + 6 * unit));
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  const LatencySnapshot s = h.snapshot();
  ASSERT_EQ(s.count, values.size());
  for (const double q : {0.50, 0.90, 0.99, 0.999}) {
    const auto rank = static_cast<std::size_t>(q * values.size());
    const double oracle = static_cast<double>(
        values[std::min(rank, values.size() - 1)]);
    const double est = s.quantile(q);
    EXPECT_NEAR(est, oracle, oracle / 8.0) << "q=" << q;
  }
  const double mean_oracle =
      static_cast<double>(std::accumulate(values.begin(), values.end(),
                                          std::uint64_t{0})) /
      static_cast<double>(values.size());
  EXPECT_DOUBLE_EQ(s.mean(), mean_oracle);  // sum/count is exact
}

TEST(LatencyHistogramTest, SnapshotMerge) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.record(100);
  a.record(200);
  b.record(400);
  LatencySnapshot s = a.snapshot();
  s.merge(b.snapshot());
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.sum, 700u);
}

TEST(RateWindowTest, SumCoversWindowAndDecays) {
  RateWindow w;
  // Ten events per second for seconds 100..109.
  for (std::uint64_t s = 100; s < 110; ++s) w.record(s, 10);
  EXPECT_EQ(w.sum(109, 10), 100u);
  EXPECT_EQ(w.rate(109, 10), 10.0);
  // Clock advances with no traffic: the events age out of the short
  // window but stay in the long ones and in the monotonic total.
  EXPECT_EQ(w.sum(125, 10), 0u);
  EXPECT_EQ(w.sum(125, 60), 100u);
  EXPECT_EQ(w.sum(125, 300), 100u);
  EXPECT_EQ(w.total(), 100u);
}

TEST(RateWindowTest, WindowExcludesOlderSlots) {
  RateWindow w;
  w.record(50, 7);
  w.record(100, 3);
  // (90, 100] holds only the second burst.
  EXPECT_EQ(w.sum(100, 10), 3u);
  EXPECT_EQ(w.sum(100, 60), 10u);
}

TEST(RateWindowTest, RingWraparoundReclaimsSlots) {
  RateWindow w;
  w.record(5, 9);
  // kSlots seconds later the same slot is reused; the stale count must not
  // leak into the new second's sums.
  const std::uint64_t later = 5 + RateWindow::kSlots;
  w.record(later, 1);
  EXPECT_EQ(w.sum(later, 10), 1u);
  EXPECT_EQ(w.total(), 10u);
}

svc::RequestRecord make_record(std::uint64_t id, const std::string& verb,
                               const std::string& status,
                               const std::string& cache, double total_ms) {
  svc::RequestRecord rec;
  rec.id = id;
  rec.verb = verb;
  rec.status = status;
  rec.cache = cache;
  rec.wait_ms = total_ms / 4;
  rec.run_ms = total_ms / 2;
  rec.total_ms = total_ms;
  return rec;
}

TEST(ServiceTelemetryTest, VerbSlots) {
  EXPECT_EQ(svc::kTelemetryVerbs[svc::telemetry_verb_slot("evaluate")],
            std::string("evaluate"));
  EXPECT_EQ(svc::kTelemetryVerbs[svc::telemetry_verb_slot("metrics")],
            std::string("metrics"));
  // Unknown names land in the trailing "other" slot, never out of range.
  EXPECT_EQ(svc::telemetry_verb_slot("no-such-verb"), svc::kVerbSlots - 1);
  EXPECT_EQ(svc::telemetry_verb_slot(""), svc::kVerbSlots - 1);
}

TEST(ServiceTelemetryTest, ClassificationInvariant) {
  svc::ServiceTelemetry t;
  t.record(make_record(1, "version", "ok", "miss", 1.0));
  t.record(make_record(2, "version", "ok", "hit", 0.1));
  t.record(make_record(3, "evaluate", "error", "miss", 5.0));
  t.record(make_record(4, "evaluate", "overloaded", "none", 0.0));
  t.record(make_record(5, "mystery", "ok", "uncached", 0.2));
  const svc::TelemetrySnapshot snap = t.snapshot(svc::GaugeSample{});
  EXPECT_EQ(snap.requests, 5u);
  EXPECT_EQ(snap.warm_hits, 1u);
  EXPECT_EQ(snap.rejections, 1u);
  EXPECT_EQ(snap.misses, 3u);
  // Every answered request is exactly one of hit / miss / rejection.
  EXPECT_EQ(snap.warm_hits + snap.misses, snap.requests - snap.rejections);
  // Per-verb cells: version=2, evaluate=2 (one error), other=1.
  ASSERT_EQ(snap.verbs.size(), 3u);
  EXPECT_EQ(snap.verbs[0].verb, "evaluate");
  EXPECT_EQ(snap.verbs[0].count, 2u);
  EXPECT_EQ(snap.verbs[0].errors, 2u);  // "error" and "overloaded"
  EXPECT_EQ(snap.verbs[1].verb, "version");
  EXPECT_EQ(snap.verbs[1].errors, 0u);
  EXPECT_EQ(snap.verbs[2].verb, "other");
  EXPECT_EQ(snap.verbs[2].count, 1u);
}

TEST(ServiceTelemetryTest, RecentRingNewestFirstAndBounded) {
  svc::ServiceTelemetry t;
  const std::size_t n = svc::ServiceTelemetry::kRecentCapacity + 10;
  for (std::size_t i = 1; i <= n; ++i) {
    t.record(make_record(i, "version", "ok", "miss", 1.0));
  }
  const auto recent = t.recent(5);
  ASSERT_EQ(recent.size(), 5u);
  EXPECT_EQ(recent[0].id, n);  // newest first
  EXPECT_EQ(recent[4].id, n - 4);
  // Asking for more than the ring holds returns exactly the capacity.
  EXPECT_EQ(t.recent(10 * n).size(), svc::ServiceTelemetry::kRecentCapacity);
}

svc::TelemetrySnapshot sample_snapshot() {
  svc::ServiceTelemetry t;
  t.record(make_record(1, "evaluate", "ok", "miss", 12.5));
  t.record(make_record(2, "evaluate", "ok", "hit", 0.3));
  t.record(make_record(3, "version", "error", "uncached", 0.1));
  svc::GaugeSample g;
  g.queue_interactive = 1;
  g.queue_batch = 2;
  g.in_flight = 3;
  g.capacity = 64;
  g.result_cache_entries = 7;
  g.result_cache_bytes = 4242;
  g.journal_bytes = 999;
  g.threads = 4;
  svc::TelemetrySnapshot snap = t.snapshot(g);
  snap.version = "test-version";
  return snap;
}

TEST(TelemetrySnapshotTest, JsonRoundTrips) {
  const svc::TelemetrySnapshot snap = sample_snapshot();
  std::ostringstream os;
  snap.write_json(os);
  const obs::JsonValue doc = obs::JsonValue::parse(os.str());
  EXPECT_EQ(doc.at("canud").as_string(), "test-version");
  EXPECT_EQ(doc.at("totals").at("requests").as_u64(), 3u);
  EXPECT_EQ(doc.at("totals").at("warm_hits").as_u64(), 1u);
  EXPECT_EQ(doc.at("gauges").at("capacity").as_u64(), 64u);
  EXPECT_EQ(doc.at("gauges").at("result_cache_bytes").as_u64(), 4242u);
  EXPECT_EQ(doc.at("gauges").at("journal_bytes").as_u64(), 999u);
  // All three windows render, each internally consistent.
  for (const char* key : {"10s", "60s", "300s"}) {
    const obs::JsonValue& win = doc.at("windows").at(key);
    EXPECT_EQ(win.at("requests").as_u64(), 3u) << key;
    // 1 hit / (1 hit + 2 misses — "uncached" classifies as a miss).
    EXPECT_NEAR(win.at("warm_hit_ratio").as_number(), 1.0 / 3.0, 1e-9) << key;
  }
  const obs::JsonValue& eval = doc.at("verbs").at("evaluate");
  EXPECT_EQ(eval.at("count").as_u64(), 2u);
  EXPECT_EQ(eval.at("errors").as_u64(), 0u);
  // Legacy keys and the quantile objects agree with each other.
  EXPECT_NEAR(eval.at("p50_ms").as_number(),
              eval.at("total_ms").at("p50").as_number(), 1e-9);
  EXPECT_GE(eval.at("total_ms").at("p99").as_number(),
            eval.at("total_ms").at("p50").as_number());
  // p50 of {0.3 ms, 12.5 ms} is the lower sample, within bucket resolution.
  EXPECT_NEAR(eval.at("p50_ms").as_number(), 0.3, 0.3 / 8);
}

TEST(TelemetrySnapshotTest, PrometheusExposition) {
  const svc::TelemetrySnapshot snap = sample_snapshot();
  std::ostringstream os;
  snap.write_prometheus(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE canud_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("canud_requests_total 3"), std::string::npos);
  EXPECT_NE(text.find("canud_rps{window=\"10s\"} 0.3"), std::string::npos);
  EXPECT_NE(text.find("canud_queue_depth{class=\"batch\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("canud_request_seconds{verb=\"evaluate\",quantile="),
            std::string::npos);
  EXPECT_NE(text.find("canud_request_seconds_count{verb=\"evaluate\"} 2"),
            std::string::npos);
  // Exposition grammar: every non-comment line is `name{labels} value` with
  // a parseable number.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_NO_THROW({
      std::stod(line.substr(space + 1));
    }) << line;
    const std::string name = line.substr(0, space);
    EXPECT_EQ(name.compare(0, 6, "canud_"), 0) << line;
  }
}

}  // namespace
}  // namespace canu
