// Unit + property tests for src/assoc: the paper's three programmable
// associativity schemes.
#include <gtest/gtest.h>

#include "assoc/adaptive_cache.hpp"
#include "assoc/bcache.hpp"
#include "assoc/column_associative.hpp"
#include "cache/set_assoc_cache.hpp"
#include "indexing/odd_multiplier.hpp"
#include "indexing/prime_modulo.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace canu {
namespace {

constexpr std::uint64_t kLine = 32;
constexpr std::uint64_t kCache = 32 * 1024;  // paper L1: 1024 sets

Trace random_trace(std::size_t n, std::uint64_t lines, std::uint64_t seed) {
  Trace t("random");
  Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    t.append(rng.below(lines) * kLine, AccessType::kRead);
  }
  return t;
}

// ------------------------------------------------- column-associative ----

TEST(ColumnAssociative, PrimaryHitCostsOneCycle) {
  ColumnAssociativeCache cache(CacheGeometry::paper_l1());
  cache.access(0x100);
  const AccessOutcome out = cache.access(0x100);
  EXPECT_TRUE(out.hit);
  EXPECT_EQ(out.probes, 1u);
  EXPECT_EQ(out.cycles, 1u);
}

TEST(ColumnAssociative, AlternateLocationIsMsbFlip) {
  ColumnAssociativeCache cache(CacheGeometry::paper_l1());
  EXPECT_EQ(cache.alternate_of(0), 512u);
  EXPECT_EQ(cache.alternate_of(512), 0u);
  EXPECT_EQ(cache.alternate_of(5), 517u);
  EXPECT_EQ(cache.alternate_of(1023), 511u);
}

TEST(ColumnAssociative, ConflictPreservedInAlternate) {
  ColumnAssociativeCache cache(CacheGeometry::paper_l1());
  const std::uint64_t a = 0, b = kCache;  // same primary set 0
  cache.access(a);  // miss; a at set 0
  cache.access(b);  // miss both; b takes set 0, a moves to set 512
  const AccessOutcome out = cache.access(a);  // rehash hit at 512
  EXPECT_TRUE(out.hit);
  EXPECT_EQ(out.probes, 2u);
  EXPECT_EQ(out.cycles, 2u);
  EXPECT_EQ(cache.rehash_hits(), 1u);
}

TEST(ColumnAssociative, RehashHitSwapsToPrimary) {
  ColumnAssociativeCache cache(CacheGeometry::paper_l1());
  const std::uint64_t a = 0, b = kCache;
  cache.access(a);
  cache.access(b);
  cache.access(a);  // rehash hit; swap: a back to set 0, b to set 512
  EXPECT_EQ(cache.access(a).probes, 1u) << "a must now hit first-time";
  EXPECT_EQ(cache.access(b).probes, 2u) << "b now lives in the alternate";
}

TEST(ColumnAssociative, RehashBitShortCircuitsSecondProbe) {
  ColumnAssociativeCache cache(CacheGeometry::paper_l1());
  // Fill set 512 with a rehashed block: a and b conflict in set 0; after
  // both, a (rehash bit set) occupies set 512.
  const std::uint64_t a = 0, b = kCache;
  cache.access(a);
  cache.access(b);
  // c's primary slot IS set 512. Its slot holds a rehashed block, so c is
  // installed directly with no alternate probe (1 lookup cycle).
  const std::uint64_t c = 512 * kLine;
  const AccessOutcome out = cache.access(c);
  EXPECT_FALSE(out.hit);
  EXPECT_EQ(out.probes, 1u);
  EXPECT_FALSE(cache.access(a).hit) << "the rehashed block was displaced";
}

TEST(ColumnAssociative, NeverWorseThanHalfSizeAndComparableToTwoWay) {
  // On random traces the column-associative cache must land between the
  // direct-mapped and 2-way miss rates (it is a constrained 2-way design).
  const Trace t = random_trace(150'000, 2048, 21);
  SetAssocCache direct(CacheGeometry{kCache, kLine, 1});
  SetAssocCache twoway(CacheGeometry{kCache, kLine, 2});
  ColumnAssociativeCache column(CacheGeometry{kCache, kLine, 1});
  for (const MemRef& r : t) {
    direct.access(r.addr);
    twoway.access(r.addr);
    column.access(r.addr);
  }
  EXPECT_LE(column.stats().misses, direct.stats().misses * 105 / 100);
  EXPECT_GE(column.stats().misses * 110 / 100, twoway.stats().misses);
}

TEST(ColumnAssociative, AmatFractionsConsistent) {
  const Trace t = random_trace(60'000, 2048, 22);
  ColumnAssociativeCache cache(CacheGeometry::paper_l1());
  for (const MemRef& r : t) cache.access(r.addr);
  EXPECT_GE(cache.fraction_rehash_hits(), 0.0);
  EXPECT_LE(cache.fraction_rehash_hits(), 1.0);
  EXPECT_GE(cache.fraction_rehash_misses(), 0.0);
  EXPECT_LE(cache.fraction_rehash_misses(), 1.0);
  EXPECT_EQ(cache.stats().hits,
            cache.stats().primary_hits + cache.stats().secondary_hits);
}

TEST(ColumnAssociative, HybridPrimaryIndexSupported) {
  // Figure 8 configuration: odd-multiplier as the first-level index.
  auto odd = std::make_shared<OddMultiplierIndex>(1024, 5, 21);
  ColumnAssociativeCache cache(CacheGeometry::paper_l1(), odd);
  EXPECT_EQ(cache.name(), "column_assoc[odd_multiplier(21)]");
  const Trace t = random_trace(50'000, 4096, 23);
  for (const MemRef& r : t) cache.access(r.addr);
  EXPECT_EQ(cache.stats().accesses, t.size());
  EXPECT_EQ(cache.stats().hits + cache.stats().misses, t.size());
}

TEST(ColumnAssociative, HybridPrimeModuloStaysInRange) {
  auto prime = std::make_shared<PrimeModuloIndex>(1024, 5);
  ColumnAssociativeCache cache(CacheGeometry::paper_l1(), prime);
  const Trace t = random_trace(50'000, 8192, 24);
  for (const MemRef& r : t) cache.access(r.addr);  // must not throw/overrun
  EXPECT_EQ(cache.stats().accesses, t.size());
}

TEST(ColumnAssociative, RequiresDirectMappedArray) {
  EXPECT_THROW(ColumnAssociativeCache(CacheGeometry{kCache, kLine, 2}), Error);
}

// ------------------------------------------------- set history table ----

TEST(SetHistoryTable, TracksMruSets) {
  SetHistoryTable sht(3);
  sht.touch(1);
  sht.touch(2);
  sht.touch(3);
  EXPECT_TRUE(sht.contains(1));
  sht.touch(4);  // evicts 1 (LRU)
  EXPECT_FALSE(sht.contains(1));
  EXPECT_TRUE(sht.contains(2));
  EXPECT_TRUE(sht.contains(3));
  EXPECT_TRUE(sht.contains(4));
}

TEST(SetHistoryTable, TouchRefreshesRecency) {
  SetHistoryTable sht(2);
  sht.touch(1);
  sht.touch(2);
  sht.touch(1);  // 1 becomes MRU
  sht.touch(3);  // evicts 2, not 1
  EXPECT_TRUE(sht.contains(1));
  EXPECT_FALSE(sht.contains(2));
}

TEST(SetHistoryTable, SizeBounded) {
  SetHistoryTable sht(4);
  for (std::uint64_t i = 0; i < 100; ++i) sht.touch(i);
  EXPECT_EQ(sht.size(), 4u);
}

TEST(SetHistoryTable, ClearEmpties) {
  SetHistoryTable sht(4);
  sht.touch(1);
  sht.clear();
  EXPECT_FALSE(sht.contains(1));
  EXPECT_EQ(sht.size(), 0u);
  sht.touch(2);  // usable after clear
  EXPECT_TRUE(sht.contains(2));
}

// ------------------------------------------------------ adaptive cache ----

TEST(AdaptiveCache, TableSizesFollowPaperFractions) {
  AdaptiveCache cache(CacheGeometry::paper_l1());
  EXPECT_EQ(cache.sht_capacity(), 1024u * 3 / 8);
  EXPECT_EQ(cache.out_capacity(), 1024u / 4);
}

TEST(AdaptiveCache, PrimaryHitCostsOneCycle) {
  AdaptiveCache cache(CacheGeometry::paper_l1());
  cache.access(0x100);
  const AccessOutcome out = cache.access(0x100);
  EXPECT_TRUE(out.hit);
  EXPECT_EQ(out.cycles, 1u);
}

TEST(AdaptiveCache, ValuableVictimRelocatedAndFoundViaOut) {
  AdaptiveCache cache(CacheGeometry::paper_l1());
  const std::uint64_t a = 0, b = kCache;  // both map to set 0
  cache.access(a);  // a in set 0
  cache.access(a);  // set 0 is firmly MRU
  cache.access(b);  // displaces a -> relocated, OUT entry written
  EXPECT_EQ(cache.relocations(), 1u);
  const AccessOutcome out = cache.access(a);  // OUT hit, 3 cycles
  EXPECT_TRUE(out.hit);
  EXPECT_EQ(out.cycles, 3u);
  EXPECT_EQ(cache.out_hits(), 1u);
}

TEST(AdaptiveCache, OutHitSwapsBackToPrimary) {
  AdaptiveCache cache(CacheGeometry::paper_l1());
  const std::uint64_t a = 0, b = kCache;
  cache.access(a);
  cache.access(a);
  cache.access(b);  // a relocated
  cache.access(a);  // OUT hit; a swapped back to set 0, b displaced
  EXPECT_EQ(cache.access(a).cycles, 1u) << "a must be a direct hit again";
}

TEST(AdaptiveCache, ColdVictimSimplyEvicted) {
  // A block whose set was never MRU before the conflicting access should
  // not be preserved. Construct: touch many other sets so set 0 ages out
  // of the SHT, then displace its occupant.
  CacheGeometry small{1024, 32, 1};  // 32 sets
  AdaptiveConfig cfg;
  AdaptiveCache cache(small, cfg);
  const std::uint64_t sets = small.sets();
  cache.access(0);  // block a in set 0
  // Touch every other set enough times to push set 0 out of the SHT
  // (capacity = 3/8 * 32 = 12).
  for (std::uint64_t s = 1; s < sets; ++s) {
    cache.access(s * kLine);
  }
  EXPECT_EQ(cache.relocations(), 0u);
  cache.access(sets * kLine);  // conflicts with set 0; a is disposable
  EXPECT_EQ(cache.relocations(), 0u);
  EXPECT_FALSE(cache.access(0).hit) << "a must be gone";
}

TEST(AdaptiveCache, StatsInvariantsOnRandomTrace) {
  const Trace t = random_trace(150'000, 4096, 31);
  AdaptiveCache cache(CacheGeometry::paper_l1());
  for (const MemRef& r : t) cache.access(r.addr);
  const CacheStats& s = cache.stats();
  EXPECT_EQ(s.accesses, t.size());
  EXPECT_EQ(s.hits + s.misses, s.accesses);
  EXPECT_EQ(s.hits, s.primary_hits + s.secondary_hits);
}

TEST(AdaptiveCache, ReducesMissesOnConflictHeavyTrace) {
  // Two hot lines per set in half the sets: direct-mapped thrashes, the
  // adaptive cache should relocate into the untouched half.
  Trace t;
  Xoshiro256 rng(32);
  for (int i = 0; i < 100'000; ++i) {
    const std::uint64_t set = rng.below(512);
    const std::uint64_t way = rng.below(2);
    t.append(set * kLine + way * kCache, AccessType::kRead);
  }
  SetAssocCache direct(CacheGeometry::paper_l1());
  AdaptiveCache adaptive(CacheGeometry::paper_l1());
  for (const MemRef& r : t) {
    direct.access(r.addr);
    adaptive.access(r.addr);
  }
  EXPECT_LT(adaptive.stats().misses, direct.stats().misses);
}

TEST(AdaptiveCache, FlushResetsEverything) {
  AdaptiveCache cache(CacheGeometry::paper_l1());
  cache.access(0);
  cache.access(0);
  cache.access(kCache);
  cache.flush();
  EXPECT_EQ(cache.stats().accesses, 0u);
  EXPECT_FALSE(cache.access(0).hit);
}

// ------------------------------------------------------------ b-cache ----

TEST(BCache, PaperGeometryDecomposition) {
  BCache cache(CacheGeometry::paper_l1());  // MF=2, BAS=8 defaults
  EXPECT_EQ(cache.original_index_bits(), 10u);
  EXPECT_EQ(cache.npi_bits(), 7u);   // eq. (7): BAS = 2^10 / 2^7 = 8
  EXPECT_EQ(cache.pi_bits(), 4u);    // eq. (6): MF = 2^(4+7) / 2^10 = 2
  EXPECT_EQ(cache.clusters(), 128u);
}

TEST(BCache, HitTimeIsOneCycle) {
  BCache cache(CacheGeometry::paper_l1());
  cache.access(0x100);
  const AccessOutcome out = cache.access(0x100);
  EXPECT_TRUE(out.hit);
  EXPECT_EQ(out.cycles, 1u);
  EXPECT_EQ(out.probes, 1u);
}

TEST(BCache, MatchesEightWayMissRate) {
  // The paper (§III.C / §IV.B, citing Zhang) observes the MF=2/BAS=8
  // B-cache achieves the miss rate of an 8-way set-associative cache of the
  // same capacity. With a full mapping (PI covering the whole tag) our
  // model makes that exact; with MF=2 it should track it closely.
  const Trace t = random_trace(200'000, 4096, 41);
  BCache bcache(CacheGeometry::paper_l1());
  SetAssocCache eightway(CacheGeometry{kCache, kLine, 8});
  for (const MemRef& r : t) {
    bcache.access(r.addr);
    eightway.access(r.addr);
  }
  const double bm = bcache.stats().miss_rate();
  const double em = eightway.stats().miss_rate();
  EXPECT_NEAR(bm, em, 0.01);
}

TEST(BCache, BeatsDirectMappedOnConflicts) {
  const Trace t = random_trace(150'000, 2048, 42);
  BCache bcache(CacheGeometry::paper_l1());
  SetAssocCache direct(CacheGeometry::paper_l1());
  for (const MemRef& r : t) {
    bcache.access(r.addr);
    direct.access(r.addr);
  }
  EXPECT_LE(bcache.stats().misses, direct.stats().misses);
}

TEST(BCache, PerClusterStatsConsistent) {
  const Trace t = random_trace(50'000, 4096, 43);
  BCache cache(CacheGeometry::paper_l1());
  for (const MemRef& r : t) cache.access(r.addr);
  ASSERT_EQ(cache.set_stats().size(), cache.clusters());
  std::uint64_t acc = 0;
  for (const SetStats& s : cache.set_stats()) acc += s.accesses;
  EXPECT_EQ(acc, cache.stats().accesses);
}

TEST(BCache, ConfigValidation) {
  EXPECT_THROW(BCache(CacheGeometry{kCache, kLine, 2}), Error);
  BCacheConfig bad;
  bad.associativity = 3;
  EXPECT_THROW(BCache(CacheGeometry::paper_l1(), bad), Error);
  BCacheConfig huge;
  huge.associativity = 2048;  // exceeds 1024 lines
  EXPECT_THROW(BCache(CacheGeometry::paper_l1(), huge), Error);
}

TEST(BCache, FlushAndReset) {
  BCache cache(CacheGeometry::paper_l1());
  cache.access(0x40);
  cache.reset_stats();
  EXPECT_EQ(cache.stats().accesses, 0u);
  EXPECT_TRUE(cache.access(0x40).hit);
  cache.flush();
  EXPECT_FALSE(cache.access(0x40).hit);
}

}  // namespace
}  // namespace canu
