// canud service-layer suite: wire framing, protocol round-trips, canonical
// cache keys, single-flight result cache, admission control, and the full
// daemon over an in-process loopback plus real Unix/TCP sockets.
//
// Server tests use short mkdtemp paths under /tmp (sockaddr_un caps paths
// at ~107 bytes) and kernel-assigned TCP ports, so nothing here depends on
// a free well-known port.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/evaluator.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "obs/version.hpp"
#include "result_matchers.hpp"
#include "svc/client.hpp"
#include "svc/protocol.hpp"
#include "svc/result_cache.hpp"
#include "svc/scheduler.hpp"
#include "svc/server.hpp"
#include "svc/socket.hpp"
#include "svc/verbs.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace canu::svc {
namespace {

/// mkdtemp under /tmp — short enough for sockaddr_un — removed on scope
/// exit.
struct TempDir {
  TempDir() {
    char tmpl[] = "/tmp/canu_svc_XXXXXX";
    const char* p = mkdtemp(tmpl);
    EXPECT_NE(p, nullptr);
    path = p;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

struct SocketPair {
  SocketPair() {
    int fds[2];
    EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = FdHandle(fds[0]);
    b = FdHandle(fds[1]);
  }
  FdHandle a, b;
};

Request evaluate_request(double scale = 0.0625) {
  Request req;
  req.verb = "evaluate";
  req.args = {"crc", "indexing"};
  req.params.scale = scale;
  return req;
}

// ---------------------------------------------------------------------------
// Framing

TEST(Framing, RoundTripsFramesInOrder) {
  SocketPair sp;
  write_frame(sp.a.get(), "first");
  write_frame(sp.a.get(), "");
  write_frame(sp.a.get(), std::string(100000, 'x'));
  std::string payload;
  ASSERT_TRUE(read_frame(sp.b.get(), &payload));
  EXPECT_EQ(payload, "first");
  ASSERT_TRUE(read_frame(sp.b.get(), &payload));
  EXPECT_EQ(payload, "");
  ASSERT_TRUE(read_frame(sp.b.get(), &payload));
  EXPECT_EQ(payload, std::string(100000, 'x'));
}

TEST(Framing, CleanEofReturnsFalse) {
  SocketPair sp;
  sp.a.reset();
  std::string payload;
  EXPECT_FALSE(read_frame(sp.b.get(), &payload));
}

TEST(Framing, MidFrameEofThrows) {
  SocketPair sp;
  const unsigned char header[4] = {0, 0, 0, 10};  // promises 10 bytes
  write_all(sp.a.get(), header, 4);
  write_all(sp.a.get(), "abc", 3);
  sp.a.reset();
  std::string payload;
  EXPECT_THROW(read_frame(sp.b.get(), &payload), Error);
}

TEST(Framing, OversizeLengthThrowsBeforeAllocating) {
  SocketPair sp;
  const std::uint32_t n = kMaxFrameBytes + 1;
  const unsigned char header[4] = {
      static_cast<unsigned char>(n >> 24), static_cast<unsigned char>(n >> 16),
      static_cast<unsigned char>(n >> 8), static_cast<unsigned char>(n)};
  write_all(sp.a.get(), header, 4);
  std::string payload;
  EXPECT_THROW(read_frame(sp.b.get(), &payload), Error);
}

// ---------------------------------------------------------------------------
// Protocol documents

TEST(Protocol, RequestRoundTrip) {
  Request req;
  req.verb = "evaluate";
  req.args = {"crc", "with \"quotes\"\nand newline"};
  req.params.seed = 42;
  req.params.scale = 0.37;
  req.params.address_base = 0xdeadbeef;
  req.threads = 7;

  const Request back = decode_request(encode_request(req));
  EXPECT_EQ(back.verb, req.verb);
  EXPECT_EQ(back.args, req.args);
  EXPECT_EQ(back.params.seed, req.params.seed);
  EXPECT_EQ(back.params.scale, req.params.scale);
  EXPECT_EQ(back.params.address_base, req.params.address_base);
  EXPECT_EQ(back.threads, req.threads);
}

TEST(Protocol, ResponseRoundTrip) {
  Response resp;
  resp.status = "ok";
  resp.version = "v1.2.3-g123";
  resp.exit_code = 75;
  resp.output = "line one\nline two\n";
  resp.error = "warning: x\n";
  resp.wall_s = 1.25;
  resp.result_cache_hit = true;
  resp.coalesced = true;
  resp.cache_key = "abc123";
  resp.server.admitted = 10;
  resp.server.rejected = 2;
  resp.server.result_cache_hits = 3;
  resp.server.result_cache_misses = 4;
  resp.server.coalesced = 5;
  resp.server.in_flight = 6;
  resp.server.capacity = 64;

  const Response back = decode_response(encode_response(resp));
  EXPECT_EQ(back.status, resp.status);
  EXPECT_EQ(back.version, resp.version);
  EXPECT_EQ(back.exit_code, resp.exit_code);
  EXPECT_EQ(back.output, resp.output);
  EXPECT_EQ(back.error, resp.error);
  EXPECT_EQ(back.wall_s, resp.wall_s);
  EXPECT_TRUE(back.result_cache_hit);
  EXPECT_TRUE(back.coalesced);
  EXPECT_EQ(back.cache_key, resp.cache_key);
  EXPECT_EQ(back.server.admitted, resp.server.admitted);
  EXPECT_EQ(back.server.rejected, resp.server.rejected);
  EXPECT_EQ(back.server.result_cache_hits, resp.server.result_cache_hits);
  EXPECT_EQ(back.server.result_cache_misses, resp.server.result_cache_misses);
  EXPECT_EQ(back.server.coalesced, resp.server.coalesced);
  EXPECT_EQ(back.server.in_flight, resp.server.in_flight);
  EXPECT_EQ(back.server.capacity, resp.server.capacity);
}

TEST(Protocol, DecodeRejectsGarbageAndVersionMismatch) {
  EXPECT_THROW(decode_request("not json"), Error);
  EXPECT_THROW(decode_response("{}"), Error);  // missing protocol version
  EXPECT_THROW(decode_request("{\"canu\": 999, \"verb\": \"list\"}"), Error);
}

// ---------------------------------------------------------------------------
// Canonical cache key

TEST(CanonicalKey, StableAndHexShaped) {
  const std::string k1 = canonical_request_key(evaluate_request());
  const std::string k2 = canonical_request_key(evaluate_request());
  EXPECT_EQ(k1, k2);
  EXPECT_EQ(k1.size(), 32u);
  EXPECT_EQ(k1.find_first_not_of("0123456789abcdef"), std::string::npos);
}

TEST(CanonicalKey, ThreadCountIsExcluded) {
  Request a = evaluate_request();
  Request b = evaluate_request();
  a.threads = 1;
  b.threads = 16;
  EXPECT_EQ(canonical_request_key(a), canonical_request_key(b));
}

TEST(CanonicalKey, IdentityFieldsAllVaryTheKey) {
  const std::string base = canonical_request_key(evaluate_request());

  Request r = evaluate_request();
  r.verb = "threec";
  EXPECT_NE(canonical_request_key(r), base);

  r = evaluate_request();
  r.args = {"crc", "assoc"};
  EXPECT_NE(canonical_request_key(r), base);

  r = evaluate_request();
  r.params.seed = 2;
  EXPECT_NE(canonical_request_key(r), base);

  r = evaluate_request();
  r.params.scale = 0.125;
  EXPECT_NE(canonical_request_key(r), base);

  r = evaluate_request();
  r.params.address_base += 64;
  EXPECT_NE(canonical_request_key(r), base);
}

Request grid_request(std::vector<std::string> dims) {
  Request req;
  req.verb = "evaluate";
  req.args = {"crc", "--grid"};
  for (std::string& d : dims) req.args.push_back(std::move(d));
  req.params.scale = 0.0625;
  return req;
}

TEST(CanonicalKey, PermutedEquivalentGridSpecsShareOneKey) {
  const Request a = grid_request(
      {"sets=512,1024", "ways=1,2", "line=32", "scheme=modulo,xor"});
  // Dimension tokens reordered, lists permuted and duplicated, flag moved:
  // the same grid, so the same cache entry.
  Request b;
  b.verb = "evaluate";
  b.args = {"scheme=xor,modulo", "crc", "ways=2,1", "--grid",
            "line=32,32", "sets=1024,512,512"};
  b.params.scale = 0.0625;
  EXPECT_EQ(canonical_request_key(a), canonical_request_key(b));
}

TEST(CanonicalKey, DifferentGridsGetDifferentKeys) {
  const std::string base = canonical_request_key(
      grid_request({"sets=512,1024", "ways=1,2", "scheme=modulo,xor"}));
  EXPECT_NE(canonical_request_key(
                grid_request({"sets=512", "ways=1,2", "scheme=modulo,xor"})),
            base);
  EXPECT_NE(canonical_request_key(
                grid_request({"sets=512,1024", "ways=1", "scheme=modulo,xor"})),
            base);
  EXPECT_NE(canonical_request_key(grid_request(
                {"sets=512,1024", "ways=1,2", "scheme=modulo"})),
            base);
  // A grid request is not the same identity as the plain evaluate it
  // superficially resembles.
  EXPECT_NE(canonical_request_key(grid_request({})),
            canonical_request_key(evaluate_request()));
}

Request sample_request(std::vector<std::string> extra) {
  Request req = evaluate_request();
  for (std::string& a : extra) req.args.push_back(std::move(a));
  return req;
}

TEST(CanonicalKey, SampledAndExactRunsAreDistinctEntries) {
  // Sampled results are estimates; exact results are ground truth. The two
  // must never share a result-cache slot, in either verb.
  EXPECT_NE(canonical_request_key(sample_request({"--sample"})),
            canonical_request_key(evaluate_request()));
  Request a = evaluate_request();
  a.verb = "advise";
  Request b = a;
  b.args.push_back("--sample");
  EXPECT_NE(canonical_request_key(a), canonical_request_key(b));
}

TEST(CanonicalKey, SamplingParamsAreRequestIdentity) {
  const std::string base =
      canonical_request_key(sample_request({"--sample"}));
  EXPECT_NE(canonical_request_key(sample_request({"--sample=32"})), base);
  EXPECT_NE(canonical_request_key(sample_request({"--sample",
                                                  "--sample-seed=7"})),
            base);
  EXPECT_NE(canonical_request_key(sample_request({"--sample",
                                                  "--max-error=0.5"})),
            base);
}

TEST(CanonicalKey, PermutedEquivalentSampledSpecsShareOneKey) {
  // Spelled-out defaults, reordered flags: the same sampled evaluation,
  // so one cache entry.
  const Request a = sample_request({"--sample"});
  const Request b = sample_request({"--sample=0", "--sample-seed=1"});
  Request c = evaluate_request();
  c.args.insert(c.args.begin(), "--sample-seed=1");
  c.args.push_back("--sample");
  EXPECT_EQ(canonical_request_key(a), canonical_request_key(b));
  EXPECT_EQ(canonical_request_key(a), canonical_request_key(c));
}

TEST(CanonicalKey, SamplingComposesWithGridCanonicalization) {
  Request a = grid_request({"sets=512,1024", "scheme=modulo,xor"});
  a.args.push_back("--sample");
  Request b = grid_request({"scheme=xor,modulo", "sets=1024,512"});
  b.args.insert(b.args.begin(), "--sample=0");
  EXPECT_EQ(canonical_request_key(a), canonical_request_key(b));
  EXPECT_NE(canonical_request_key(a),
            canonical_request_key(
                grid_request({"sets=512,1024", "scheme=modulo,xor"})));
}

TEST(CanonicalKey, MalformedGridSpecFallsBackToLiteralArgs) {
  const Request bad = grid_request({"sets=notanumber"});
  // Must not throw, and stays stable — the request will fail at execution
  // and never be cached, but the key is still computed for the lookup.
  const std::string k1 = canonical_request_key(bad);
  const std::string k2 = canonical_request_key(bad);
  EXPECT_EQ(k1, k2);
  EXPECT_EQ(k1.size(), 32u);
}

TEST(CanonicalRequestArgs, NormalizesOnlyGridEvaluates) {
  const Request plain = evaluate_request();
  EXPECT_EQ(canonical_request_args(plain), plain.args);

  Request run;
  run.verb = "run";
  run.args = {"crc", "xor"};
  EXPECT_EQ(canonical_request_args(run), run.args);

  const Request grid = grid_request({"ways=2,1", "sets=1024,512"});
  EXPECT_EQ(canonical_request_args(grid),
            (std::vector<std::string>{"crc", "--grid", "sets=512,1024",
                                      "ways=1,2", "line=32",
                                      "scheme=modulo"}));
}

TEST(SchemeSetFor, GridRequestsExpandToCellLabels) {
  const Request grid =
      grid_request({"sets=512", "ways=1,2", "scheme=xor,modulo"});
  EXPECT_EQ(scheme_set_for(grid),
            (std::vector<std::string>{"modulo@512x1x32", "modulo@512x2x32",
                                      "xor@512x1x32", "xor@512x2x32"}));
}

// ---------------------------------------------------------------------------
// ResultCache

ResultPtr make_result(const std::string& status, const std::string& output) {
  auto r = std::make_shared<CachedResult>();
  r->status = status;
  r->output = output;
  return r;
}

TEST(ResultCache, OwnerJoinHitLifecycle) {
  ResultCache cache(8);

  ResultCache::Lookup owner = cache.acquire("k");
  ASSERT_EQ(owner.role, ResultCache::Role::kOwner);
  ResultCache::Lookup joiner = cache.acquire("k");
  ASSERT_EQ(joiner.role, ResultCache::Role::kJoined);

  cache.complete("k", make_result("ok", "payload"));
  EXPECT_EQ(owner.pending.get()->output, "payload");
  EXPECT_EQ(joiner.pending.get()->output, "payload");

  ResultCache::Lookup hit = cache.acquire("k");
  ASSERT_EQ(hit.role, ResultCache::Role::kHit);
  EXPECT_EQ(hit.hit->output, "payload");

  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.coalesced(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCache, FailuresResolveWaitersButAreNotCached) {
  ResultCache cache(8);
  ResultCache::Lookup owner = cache.acquire("k");
  ASSERT_EQ(owner.role, ResultCache::Role::kOwner);
  ResultCache::Lookup joiner = cache.acquire("k");

  cache.complete("k", make_result("error", ""));
  EXPECT_EQ(joiner.pending.get()->status, "error");
  EXPECT_EQ(cache.size(), 0u);

  // A later identical request retries rather than replaying the failure.
  EXPECT_EQ(cache.acquire("k").role, ResultCache::Role::kOwner);
}

TEST(ResultCache, FifoEvictionBoundsSize) {
  ResultCache cache(2);
  for (const char* key : {"a", "b", "c"}) {
    ASSERT_EQ(cache.acquire(key).role, ResultCache::Role::kOwner);
    cache.complete(key, make_result("ok", key));
  }
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.acquire("a").role, ResultCache::Role::kOwner);  // evicted
  EXPECT_EQ(cache.acquire("b").role, ResultCache::Role::kHit);
  EXPECT_EQ(cache.acquire("c").role, ResultCache::Role::kHit);
}

TEST(ResultCache, ConcurrentAcquireElectsExactlyOneOwner) {
  ResultCache cache(8);
  constexpr int kThreads = 8;
  std::atomic<int> owners{0};
  std::vector<ResultPtr> results(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      ResultCache::Lookup lookup = cache.acquire("k");
      if (lookup.role == ResultCache::Role::kOwner) {
        ++owners;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        cache.complete("k", make_result("ok", "once"));
      }
      results[i] = lookup.role == ResultCache::Role::kHit
                       ? lookup.hit
                       : lookup.pending.get();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(owners.load(), 1);
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(results[i], results[0]);  // one shared execution, one object
  }
  EXPECT_EQ(cache.misses(), 1u);
}

// ---------------------------------------------------------------------------
// RequestScheduler

TEST(Scheduler, RefusesAtCapacityThenDrains) {
  ThreadPool pool(2);
  RequestScheduler scheduler(&pool, 2);

  std::mutex m;
  std::condition_variable cv;
  bool release = false;
  const auto blocker = [&] {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return release; });
  };

  ASSERT_TRUE(scheduler.try_submit(blocker));
  ASSERT_TRUE(scheduler.try_submit(blocker));
  EXPECT_FALSE(scheduler.try_submit([] {}));  // at capacity: explicit refusal
  EXPECT_EQ(scheduler.rejected(), 1u);
  EXPECT_EQ(scheduler.in_flight(), 2u);

  {
    std::lock_guard<std::mutex> lock(m);
    release = true;
  }
  cv.notify_all();
  scheduler.drain();
  EXPECT_EQ(scheduler.in_flight(), 0u);
  EXPECT_EQ(scheduler.admitted(), 2u);
  EXPECT_FALSE(scheduler.try_submit([] {}));  // draining is terminal
}

TEST(Scheduler, NullPoolRunsInline) {
  RequestScheduler scheduler(nullptr, 4);
  bool ran = false;
  ASSERT_TRUE(scheduler.try_submit([&] { ran = true; }));
  EXPECT_TRUE(ran);
  EXPECT_EQ(scheduler.in_flight(), 0u);
  scheduler.drain();
}

// ---------------------------------------------------------------------------
// Concurrent Evaluator use over a shared pool + shared trace cache — the
// configuration the daemon runs requests in. Must be bit-for-bit identical
// to the serial engine.

TEST(SharedPoolEvaluator, ConcurrentReportsMatchSerialBitForBit) {
  TempDir cache_dir;
  const std::vector<std::string> workloads = {"crc"};

  EvalOptions serial_options;
  serial_options.params.scale = 0.0625;
  serial_options.threads = 1;
  serial_options.trace_cache_dir = cache_dir.path;
  Evaluator serial(serial_options);
  serial.add_scheme(SchemeSpec::indexing(IndexScheme::kXor));
  serial.add_scheme(SchemeSpec::set_assoc(2));
  const EvalReport want = serial.evaluate(workloads);

  ThreadPool pool(4);
  constexpr int kConcurrent = 3;
  std::vector<EvalReport> got(kConcurrent);
  std::vector<std::thread> threads;
  for (int i = 0; i < kConcurrent; ++i) {
    threads.emplace_back([&, i] {
      EvalOptions options = serial_options;
      options.threads = 0;
      options.pool = &pool;
      Evaluator ev(options);
      ev.add_scheme(SchemeSpec::indexing(IndexScheme::kXor));
      ev.add_scheme(SchemeSpec::set_assoc(2));
      got[i] = ev.evaluate(workloads);
    });
  }
  for (std::thread& t : threads) t.join();

  for (const EvalReport& report : got) {
    ASSERT_EQ(report.scheme_labels, want.scheme_labels);
    for (const std::string& w : workloads) {
      expect_same_result(report.baseline_runs.at(w), want.baseline_runs.at(w));
      for (const std::string& label : want.scheme_labels) {
        const EvalCell* got_cell = report.cell(w, label);
        const EvalCell* want_cell = want.cell(w, label);
        ASSERT_NE(got_cell, nullptr);
        ASSERT_NE(want_cell, nullptr);
        expect_same_result(got_cell->run, want_cell->run);
        EXPECT_EQ(got_cell->miss_reduction_pct, want_cell->miss_reduction_pct);
        EXPECT_EQ(got_cell->amat_reduction_pct, want_cell->amat_reduction_pct);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Server, in-process loopback (no sockets — Server::execute is the same
// admission + dedup + cache path the connection handlers run).

std::string direct_verb_output(const Request& req) {
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(run_verb(req, out, err), 0);
  EXPECT_EQ(err.str(), "");
  return std::move(out).str();
}

TEST(ServerLoopback, ByteIdenticalAndCachedOnRepeat) {
  Server server(ServerOptions{});
  const Request req = evaluate_request();
  const std::string want = direct_verb_output(req);

  const Response first = server.execute(req);
  EXPECT_EQ(first.status, "ok");
  EXPECT_EQ(first.exit_code, 0);
  EXPECT_FALSE(first.result_cache_hit);
  EXPECT_EQ(first.output, want);
  EXPECT_EQ(first.version, obs::kVersion);
  EXPECT_EQ(first.cache_key.size(), 32u);

  // Repeat — including with a different thread count, which is not part of
  // the request identity — must come from the result cache.
  Request repeat = req;
  repeat.threads = 4;
  const Response second = server.execute(repeat);
  EXPECT_TRUE(second.result_cache_hit);
  EXPECT_EQ(second.output, want);
  EXPECT_EQ(second.cache_key, first.cache_key);
  EXPECT_EQ(second.server.result_cache_hits, 1u);
  EXPECT_EQ(second.server.result_cache_misses, 1u);
  EXPECT_EQ(second.server.admitted, 1u);  // the hit never touched admission
}

TEST(ServerLoopback, PermutedGridSpecsHitOneCacheEntry) {
  Server server(ServerOptions{});
  const Request first_req = grid_request(
      {"sets=512,1024", "ways=1,2", "line=32", "scheme=modulo,xor"});
  const std::string want = direct_verb_output(first_req);

  const Response first = server.execute(first_req);
  ASSERT_EQ(first.status, "ok");
  EXPECT_FALSE(first.result_cache_hit);
  EXPECT_EQ(first.output, want);

  // Same grid spelled differently: dimension tokens shuffled, lists
  // permuted with duplicates — a warm cache hit, never re-simulated.
  Request permuted;
  permuted.verb = "evaluate";
  permuted.args = {"ways=2,1", "crc", "--grid", "scheme=xor,modulo,xor",
                   "sets=1024,512", "line=32"};
  permuted.params.scale = first_req.params.scale;
  const Response second = server.execute(permuted);
  EXPECT_TRUE(second.result_cache_hit);
  EXPECT_EQ(second.cache_key, first.cache_key);
  EXPECT_EQ(second.output, want);
}

TEST(ServerLoopback, ConcurrentIdenticalRequestsRunOnce) {
  Server server(ServerOptions{});
  const Request req = evaluate_request();
  constexpr int kClients = 3;
  std::vector<Response> responses(kClients);
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] { responses[i] = server.execute(req); });
  }
  for (std::thread& t : threads) t.join();

  const ServerCounters c = server.counters();
  EXPECT_EQ(c.result_cache_misses, 1u);  // exactly one simulation ran
  EXPECT_EQ(c.result_cache_hits + c.coalesced,
            static_cast<std::uint64_t>(kClients - 1));
  for (const Response& resp : responses) {
    EXPECT_EQ(resp.status, "ok");
    EXPECT_EQ(resp.output, responses[0].output);
  }
}

TEST(ServerLoopback, PingIsNeverCached) {
  Server server(ServerOptions{});
  Request req;
  req.verb = "ping";
  const Response first = server.execute(req);
  const Response second = server.execute(req);
  EXPECT_EQ(first.output, "pong\n");
  EXPECT_FALSE(first.result_cache_hit);
  EXPECT_FALSE(second.result_cache_hit);
  EXPECT_EQ(first.cache_key, "");
  EXPECT_EQ(second.server.admitted, 2u);
}

TEST(ServerLoopback, UnservableVerbsGetExplicitErrors) {
  Server server(ServerOptions{});
  for (const char* verb : {"trace", "serve", "submit", "no_such_verb"}) {
    Request req;
    req.verb = verb;
    const Response resp = server.execute(req);
    EXPECT_EQ(resp.status, "error") << verb;
    EXPECT_EQ(resp.exit_code, 1) << verb;
    EXPECT_NE(resp.error.find("not servable"), std::string::npos) << verb;
  }
}

TEST(ServerLoopback, VersionVerbReportsBuildVersion) {
  Server server(ServerOptions{});
  Request req;
  req.verb = "version";
  const Response resp = server.execute(req);
  EXPECT_EQ(resp.status, "ok");
  EXPECT_EQ(resp.output, std::string("canu ") + obs::kVersion + "\n");
}

TEST(ServerLoopback, StatusAnswersInlineWithCounters) {
  Server server(ServerOptions{});
  Request req;
  req.verb = "status";
  const Response resp = server.execute(req);
  EXPECT_EQ(resp.status, "ok");
  EXPECT_NE(resp.output.find("canud "), std::string::npos);
  EXPECT_NE(resp.output.find("result_cache_hits"), std::string::npos);
  EXPECT_EQ(resp.server.admitted, 0u);  // status bypasses admission
}

TEST(ServerLoopback, OverCapacityRequestsGetOverloadedNotAHang) {
  ServerOptions options;
  options.threads = 2;
  options.queue_capacity = 1;
  Server server(std::move(options));

  Request slow;
  slow.verb = "ping";
  slow.args = {"400"};  // hold the only admission slot for 400 ms
  std::thread holder([&] {
    const Response resp = server.execute(slow);
    EXPECT_EQ(resp.status, "ok");
  });

  // Wait until the slow ping owns the slot, then overflow it.
  while (server.counters().in_flight == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  Request fast;
  fast.verb = "ping";
  const Response rejected = server.execute(fast);
  EXPECT_EQ(rejected.status, "overloaded");
  EXPECT_EQ(rejected.exit_code, 75);
  EXPECT_NE(rejected.error.find("overloaded"), std::string::npos);
  EXPECT_GE(server.counters().rejected, 1u);
  holder.join();
}

// ---------------------------------------------------------------------------
// Real sockets

TEST(ServerSocket, UnixSocketEndToEndWithResultCache) {
  TempDir dir;
  ServerOptions options;
  options.unix_socket = dir.path + "/s";
  Server server(std::move(options));
  server.start();

  Endpoint endpoint;
  endpoint.unix_path = dir.path + "/s";
  const Client client(endpoint);

  const Request req = evaluate_request();
  const std::string want = direct_verb_output(req);
  const Response first = client.call(req);
  EXPECT_EQ(first.status, "ok");
  EXPECT_EQ(first.output, want);
  EXPECT_FALSE(first.result_cache_hit);

  const Response second = client.call(req);
  EXPECT_TRUE(second.result_cache_hit);
  EXPECT_EQ(second.output, want);

  Request status;
  status.verb = "status";
  const Response st = client.call(status);
  EXPECT_NE(st.output.find("result_cache_hits"), std::string::npos);

  server.stop();
  EXPECT_FALSE(std::filesystem::exists(dir.path + "/s"));  // socket removed
}

TEST(ServerSocket, TcpEphemeralPortEndToEnd) {
  ServerOptions options;
  options.tcp_port = 0;  // kernel-assigned: never collides in CI
  Server server(std::move(options));
  server.start();
  ASSERT_GT(server.bound_tcp_port(), 0);

  Endpoint endpoint;
  endpoint.port = server.bound_tcp_port();
  const Client client(endpoint);
  Request req;
  req.verb = "ping";
  const Response resp = client.call(req);
  EXPECT_EQ(resp.status, "ok");
  EXPECT_EQ(resp.output, "pong\n");
  server.stop();
}

TEST(ServerSocket, GracefulStopAnswersInFlightRequests) {
  TempDir dir;
  ServerOptions options;
  options.unix_socket = dir.path + "/s";
  Server server(std::move(options));
  server.start();

  Endpoint endpoint;
  endpoint.unix_path = dir.path + "/s";
  Response resp;
  std::thread client_thread([&] {
    Request slow;
    slow.verb = "ping";
    slow.args = {"400"};
    resp = Client(endpoint).call(slow);
  });

  // Let the request land, then stop: the drain must answer it first.
  while (server.counters().admitted == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  server.stop();
  client_thread.join();
  EXPECT_EQ(resp.status, "ok");
  EXPECT_EQ(resp.output, "pong\n");
}

TEST(ServerSocket, MalformedFrameGetsErrorResponseNotDeadDaemon) {
  TempDir dir;
  ServerOptions options;
  options.unix_socket = dir.path + "/s";
  Server server(std::move(options));
  server.start();

  {
    const FdHandle conn = connect_unix(dir.path + "/s");
    write_frame(conn.get(), "this is not a request document");
    std::string payload;
    ASSERT_TRUE(read_frame(conn.get(), &payload));
    const Response resp = decode_response(payload);
    EXPECT_EQ(resp.status, "error");
    EXPECT_NE(resp.error.find("bad request"), std::string::npos);
  }

  // The daemon survives and serves the next client.
  Endpoint endpoint;
  endpoint.unix_path = dir.path + "/s";
  Request req;
  req.verb = "ping";
  EXPECT_EQ(Client(endpoint).call(req).status, "ok");
  server.stop();
}

// ---------------------------------------------------------------------------
// Telemetry: the metrics verb, request tracing, slow log, rollup agreement.

Response execute_verb(Server& server, const std::string& verb,
                      std::vector<std::string> args = {}) {
  Request req;
  req.verb = verb;
  req.args = std::move(args);
  return server.execute(req);
}

TEST(ServerTelemetry, MetricsVerbJsonRoundTrips) {
  Server server(ServerOptions{});
  EXPECT_EQ(execute_verb(server, "version").status, "ok");
  EXPECT_EQ(execute_verb(server, "version").status, "ok");  // cache hit
  EXPECT_EQ(execute_verb(server, "ping").status, "ok");

  const Response resp = execute_verb(server, "metrics");
  ASSERT_EQ(resp.status, "ok");
  EXPECT_EQ(resp.exit_code, 0);
  // metrics answers inline, never through admission (works under overload).
  EXPECT_EQ(resp.server.admitted, 2u);  // version + ping only (hit is inline)

  const obs::JsonValue doc = obs::JsonValue::parse(resp.output);
  EXPECT_EQ(doc.at("canud").as_string(), obs::kVersion);
  EXPECT_EQ(doc.at("totals").at("requests").as_u64(), 3u);
  EXPECT_EQ(doc.at("totals").at("warm_hits").as_u64(), 1u);
  EXPECT_EQ(doc.at("totals").at("rejections").as_u64(), 0u);
  EXPECT_EQ(doc.at("gauges").at("capacity").as_u64(), 64u);
  EXPECT_EQ(doc.at("windows").at("10s").at("requests").as_u64(), 3u);
  const obs::JsonValue& version = doc.at("verbs").at("version");
  EXPECT_EQ(version.at("count").as_u64(), 2u);
  EXPECT_GE(version.at("total_ms").at("p999").as_number(),
            version.at("total_ms").at("p50").as_number());
  EXPECT_EQ(doc.at("verbs").at("ping").at("count").as_u64(), 1u);
}

TEST(ServerTelemetry, MetricsVerbPrometheusAndBadFormat) {
  Server server(ServerOptions{});
  EXPECT_EQ(execute_verb(server, "version").status, "ok");

  const Response prom =
      execute_verb(server, "metrics", {"--format=prometheus"});
  ASSERT_EQ(prom.status, "ok");
  EXPECT_NE(prom.output.find("# TYPE canud_requests_total counter"),
            std::string::npos);
  EXPECT_NE(prom.output.find("canud_requests_total 1"), std::string::npos);
  EXPECT_NE(prom.output.find("canud_request_seconds{verb=\"version\""),
            std::string::npos);

  const Response bad = execute_verb(server, "metrics", {"--format=xml"});
  EXPECT_EQ(bad.status, "error");
  EXPECT_EQ(bad.exit_code, 1);
  EXPECT_NE(bad.error.find("--format"), std::string::npos);
}

TEST(ServerTelemetry, RequestIdsUniqueAndThreadedIntoSpans) {
  std::ostringstream os;
  {
    obs::Session* session = obs::Session::install(obs::SessionOptions{
        /*metrics=*/true, /*spans=*/true});
    {
      Server server(ServerOptions{});
      EXPECT_EQ(server.execute(evaluate_request()).status, "ok");
      EXPECT_EQ(execute_verb(server, "version").status, "ok");
    }
    session->write_trace_events(os);
    obs::Session::uninstall();
  }

  // Every request span carries a distinct "req" id, and the id propagates
  // to the verb span and down into the evaluator's workload span.
  const obs::JsonValue doc = obs::JsonValue::parse(os.str());
  std::set<std::uint64_t> request_ids;
  std::set<std::uint64_t> verb_ids;
  std::set<std::uint64_t> workload_ids;
  for (const obs::JsonValue& ev : doc.at("traceEvents").as_array()) {
    if (ev.at("ph").as_string() != "X") continue;
    const obs::JsonValue* args = ev.find("args");
    if (args == nullptr) continue;
    const obs::JsonValue* req_id = args->find("req");
    if (req_id == nullptr) continue;
    const std::string& name = ev.at("name").as_string();
    if (name.rfind("request ", 0) == 0) {
      EXPECT_TRUE(request_ids.insert(req_id->as_u64()).second)
          << "duplicate request id " << req_id->as_u64();
    } else if (name.rfind("verb ", 0) == 0) {
      verb_ids.insert(req_id->as_u64());
    } else if (name.rfind("evaluate ", 0) == 0) {
      workload_ids.insert(req_id->as_u64());
    }
  }
  ASSERT_EQ(request_ids.size(), 2u);
  for (const std::uint64_t id : verb_ids) {
    EXPECT_TRUE(request_ids.count(id)) << "verb span has unknown req " << id;
  }
  ASSERT_FALSE(workload_ids.empty());
  for (const std::uint64_t id : workload_ids) {
    EXPECT_TRUE(request_ids.count(id))
        << "workload span has unknown req " << id;
  }
}

TEST(ServerTelemetry, StatusRecentListsCompletedRequests) {
  Server server(ServerOptions{});
  EXPECT_EQ(execute_verb(server, "version").status, "ok");
  EXPECT_EQ(execute_verb(server, "ping").status, "ok");

  const Response resp = execute_verb(server, "status", {"--recent=10"});
  ASSERT_EQ(resp.status, "ok");
  EXPECT_NE(resp.output.find("recent requests"), std::string::npos);
  EXPECT_NE(resp.output.find("version"), std::string::npos);
  EXPECT_NE(resp.output.find("ping"), std::string::npos);
  // New status rows.
  EXPECT_NE(resp.output.find("queue_interactive"), std::string::npos);
  EXPECT_NE(resp.output.find("result_cache_bytes"), std::string::npos);

  const Response bad = execute_verb(server, "status", {"--recent=zero"});
  EXPECT_EQ(bad.status, "error");
  EXPECT_EQ(bad.exit_code, 1);
}

TEST(ServerTelemetry, RollupAgreesWithMetricsVerb) {
  TempDir dir;
  Server server(ServerOptions{});
  EXPECT_EQ(execute_verb(server, "version").status, "ok");
  EXPECT_EQ(execute_verb(server, "version").status, "ok");
  EXPECT_EQ(execute_verb(server, "ping").status, "ok");

  const Response live = execute_verb(server, "metrics");
  ASSERT_EQ(live.status, "ok");
  const std::string rollup_path = dir.path + "/rollup.json";
  server.write_rollup(rollup_path);
  std::ifstream in(rollup_path);
  std::stringstream buf;
  buf << in.rdbuf();

  // Both artifacts render from one TelemetrySnapshot type; the per-verb
  // latency fields must agree exactly for requests recorded before either
  // snapshot was taken.
  const obs::JsonValue metrics = obs::JsonValue::parse(live.output);
  const obs::JsonValue rollup = obs::JsonValue::parse(buf.str());
  const obs::JsonValue& mv = metrics.at("verbs").at("version");
  const obs::JsonValue& rv = rollup.at("verbs").at("version");
  for (const char* key : {"count", "errors", "p50_ms", "p99_ms", "mean_ms"}) {
    EXPECT_DOUBLE_EQ(mv.at(key).as_number(), rv.at(key).as_number()) << key;
  }
  EXPECT_DOUBLE_EQ(mv.at("total_ms").at("p999").as_number(),
                   rv.at("total_ms").at("p999").as_number());
  // The rollup keeps its legacy top-level keys for PR 5 consumers.
  EXPECT_TRUE(rollup.find("cache_hit_ratio") != nullptr);
  EXPECT_TRUE(rollup.find("totals") != nullptr);
  EXPECT_TRUE(rollup.find("windows") != nullptr);
}

TEST(ServerTelemetry, SlowLogZeroThresholdLogsEveryRequest) {
  TempDir dir;
  ServerOptions options;
  options.slow_log_ms = 0;  // log every request
  options.slow_log_path = dir.path + "/slow.jsonl";
  Server server(std::move(options));
  EXPECT_EQ(execute_verb(server, "version").status, "ok");
  EXPECT_EQ(execute_verb(server, "ping").status, "ok");

  std::ifstream in(dir.path + "/slow.jsonl");
  std::string line;
  std::vector<obs::JsonValue> lines;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    lines.push_back(obs::JsonValue::parse(line));  // each line is one JSON doc
  }
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].at("verb").as_string(), "version");
  EXPECT_EQ(lines[1].at("verb").as_string(), "ping");
  EXPECT_NE(lines[0].at("id").as_u64(), lines[1].at("id").as_u64());
  for (const obs::JsonValue& doc : lines) {
    EXPECT_GE(doc.at("total_ms").as_number(), 0.0);
    EXPECT_GE(doc.at("run_ms").as_number(), 0.0);
    EXPECT_FALSE(doc.at("cache").as_string().empty());
  }
}

TEST(ServerTelemetry, EvaluateOutputUnchangedByActiveTelemetry) {
  // The always-on telemetry and slow log must never perturb verb payloads:
  // a daemon with every observer enabled answers bit-for-bit what the
  // direct CLI path produces.
  TempDir dir;
  ServerOptions options;
  options.slow_log_ms = 0;
  options.slow_log_path = dir.path + "/slow.jsonl";
  Server server(std::move(options));
  const Request req = evaluate_request();
  const std::string want = direct_verb_output(req);
  const Response resp = server.execute(req);
  ASSERT_EQ(resp.status, "ok");
  EXPECT_EQ(resp.output, want);
  // And the request really was traced.
  EXPECT_EQ(execute_verb(server, "status", {"--recent"}).status, "ok");
  std::ifstream in(dir.path + "/slow.jsonl");
  std::string line;
  EXPECT_TRUE(std::getline(in, line));
}

}  // namespace
}  // namespace canu::svc
