// Tests for the 3C miss classifier.
#include <gtest/gtest.h>

#include "cache/set_assoc_cache.hpp"
#include "core/scheme.hpp"
#include "stats/three_c.hpp"
#include "util/rng.hpp"
#include "workloads/workload.hpp"

namespace canu {
namespace {

constexpr std::uint64_t kLine = 32;

TEST(ThreeC, SequentialSweepIsAllCompulsory) {
  Trace t;
  for (int i = 0; i < 4096; ++i) {
    t.append(static_cast<std::uint64_t>(i) * kLine, AccessType::kRead);
  }
  SetAssocCache model(CacheGeometry::paper_l1());
  const ThreeCReport r = classify_misses_paper_l1(model, t);
  EXPECT_EQ(r.total_misses, 4096u);
  EXPECT_EQ(r.compulsory, 4096u);
  EXPECT_EQ(r.capacity, 0u);
  EXPECT_EQ(r.conflict, 0);
}

TEST(ThreeC, PureConflictPattern) {
  // Two lines aliasing in the direct-mapped cache, far under capacity:
  // everything after the two compulsory misses is a conflict miss.
  Trace t;
  for (int i = 0; i < 100; ++i) {
    t.append(0, AccessType::kRead);
    t.append(32 * 1024, AccessType::kRead);
  }
  SetAssocCache model(CacheGeometry::paper_l1());
  const ThreeCReport r = classify_misses_paper_l1(model, t);
  EXPECT_EQ(r.compulsory, 2u);
  EXPECT_EQ(r.capacity, 0u);
  EXPECT_EQ(r.conflict, static_cast<std::int64_t>(r.total_misses) - 2);
  EXPECT_EQ(r.total_misses, 200u);
}

TEST(ThreeC, CapacityPattern) {
  // Cyclic sweep over 2x the cache capacity: fully-associative LRU also
  // misses every reference, so nothing is charged to conflict.
  Trace t;
  for (int rep = 0; rep < 4; ++rep) {
    for (int i = 0; i < 2048; ++i) {
      t.append(static_cast<std::uint64_t>(i) * kLine, AccessType::kRead);
    }
  }
  SetAssocCache model(CacheGeometry::paper_l1());
  const ThreeCReport r = classify_misses_paper_l1(model, t);
  EXPECT_EQ(r.compulsory, 2048u);
  EXPECT_EQ(r.capacity, 3u * 2048u);
  EXPECT_EQ(r.conflict, 0);
}

TEST(ThreeC, ComponentsSumToTotal) {
  const Trace t = generate_workload("qsort", [] {
    WorkloadParams p;
    p.scale = 0.25;
    return p;
  }());
  SetAssocCache model(CacheGeometry::paper_l1());
  const ThreeCReport r = classify_misses_paper_l1(model, t);
  EXPECT_EQ(static_cast<std::int64_t>(r.total_misses),
            static_cast<std::int64_t>(r.compulsory) +
                static_cast<std::int64_t>(r.capacity) + r.conflict);
  EXPECT_EQ(r.accesses, t.size());
}

TEST(ThreeC, FullyAssociativeModelHasNoConflict) {
  // Classifying the reference against itself: conflict must be ~0 (exactly
  // 0, since the model equals the reference).
  Trace t;
  Xoshiro256 rng(3);
  for (int i = 0; i < 50'000; ++i) {
    t.append(rng.below(4096) * kLine, AccessType::kRead);
  }
  SetAssocCache model(CacheGeometry{32 * 1024, 32, 1024});  // fully assoc
  const ThreeCReport r = classify_misses_paper_l1(model, t);
  EXPECT_EQ(r.conflict, 0);
}

TEST(ThreeC, SchemesShiftOnlyTheConflictComponent) {
  Trace t;
  Xoshiro256 rng(5);
  for (int i = 0; i < 60'000; ++i) {
    t.append(rng.below(2048) * kLine, AccessType::kRead);
  }
  auto base = build_l1_model(SchemeSpec::baseline(),
                             CacheGeometry::paper_l1(), &t);
  auto column = build_l1_model(SchemeSpec::column_associative(),
                               CacheGeometry::paper_l1(), &t);
  const ThreeCReport rb = classify_misses_paper_l1(*base, t);
  const ThreeCReport rc = classify_misses_paper_l1(*column, t);
  EXPECT_EQ(rb.compulsory, rc.compulsory);
  EXPECT_EQ(rb.capacity, rc.capacity);
  EXPECT_LE(rc.conflict, rb.conflict)
      << "column-associative must not add conflicts on random traffic";
}

}  // namespace
}  // namespace canu
