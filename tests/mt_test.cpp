// Tests for src/mt: interleavers, per-thread index dispatch, the SMT shared
// cache and the partitioned adaptive cache (paper §IV.E).
#include <gtest/gtest.h>

#include "indexing/modulo.hpp"
#include "indexing/odd_multiplier.hpp"
#include "mt/interleave.hpp"
#include "mt/partitioned_adaptive.hpp"
#include "mt/per_thread_index.hpp"
#include "mt/smt_cache.hpp"
#include "mt/way_partitioned.hpp"
#include "util/rng.hpp"

namespace canu {
namespace {

constexpr std::uint64_t kLine = 32;

Trace make_trace(std::size_t n, std::uint64_t base, std::uint64_t lines,
                 std::uint64_t seed) {
  Trace t;
  Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    t.append(base + rng.below(lines) * kLine, AccessType::kRead);
  }
  return t;
}

// --------------------------------------------------------- interleave ----

TEST(Interleave, RoundRobinAlternates) {
  Trace a, b;
  for (int i = 0; i < 4; ++i) a.append(static_cast<std::uint64_t>(i), AccessType::kRead);
  for (int i = 0; i < 4; ++i) b.append(static_cast<std::uint64_t>(100 + i), AccessType::kRead);
  const Trace traces[] = {a, b};
  const ThreadedTrace s = interleave_round_robin(traces);
  ASSERT_EQ(s.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(s[i].tid, i % 2);
  }
  EXPECT_EQ(s[0].ref.addr, 0u);
  EXPECT_EQ(s[1].ref.addr, 100u);
}

TEST(Interleave, RoundRobinChunked) {
  Trace a, b;
  for (int i = 0; i < 4; ++i) a.append(static_cast<std::uint64_t>(i), AccessType::kRead);
  for (int i = 0; i < 4; ++i) b.append(static_cast<std::uint64_t>(100 + i), AccessType::kRead);
  const Trace traces[] = {a, b};
  const ThreadedTrace s = interleave_round_robin(traces, 2);
  EXPECT_EQ(s[0].tid, 0u);
  EXPECT_EQ(s[1].tid, 0u);
  EXPECT_EQ(s[2].tid, 1u);
  EXPECT_EQ(s[3].tid, 1u);
}

TEST(Interleave, UnevenLengthsDrainCompletely) {
  Trace a, b;
  for (int i = 0; i < 10; ++i) a.append(static_cast<std::uint64_t>(i), AccessType::kRead);
  b.append(100, AccessType::kRead);
  const Trace traces[] = {a, b};
  const ThreadedTrace s = interleave_round_robin(traces);
  EXPECT_EQ(s.size(), 11u);
  // Per-thread order is preserved.
  std::uint64_t last_a = 0;
  for (const ThreadedRef& r : s) {
    if (r.tid == 0) {
      EXPECT_GE(r.ref.addr, last_a);
      last_a = r.ref.addr;
    }
  }
}

TEST(Interleave, RandomIsDeterministicAndComplete) {
  const Trace a = make_trace(500, 0x1000'0000, 64, 1);
  const Trace b = make_trace(300, 0x5000'0000, 64, 2);
  const Trace traces[] = {a, b};
  const ThreadedTrace s1 = interleave_random(traces, 9);
  const ThreadedTrace s2 = interleave_random(traces, 9);
  ASSERT_EQ(s1.size(), 800u);
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].tid, s2[i].tid);
    EXPECT_EQ(s1[i].ref.addr, s2[i].ref.addr);
  }
}

// ----------------------------------------------------- per-thread idx ----

TEST(PerThreadIndex, DispatchesByThread) {
  auto mod = std::make_shared<ModuloIndex>(1024, 5);
  auto odd = std::make_shared<OddMultiplierIndex>(1024, 5, 21);
  PerThreadIndex idx({mod, odd});
  const std::uint64_t addr = 0xabcd00;
  idx.set_thread(0);
  EXPECT_EQ(idx.index(addr), mod->index(addr));
  idx.set_thread(1);
  EXPECT_EQ(idx.index(addr), odd->index(addr));
}

TEST(PerThreadIndex, RejectsBadThreadId) {
  auto mod = std::make_shared<ModuloIndex>(1024, 5);
  PerThreadIndex idx({mod});
  EXPECT_THROW(idx.set_thread(1), Error);
}

TEST(PerThreadIndex, NameListsComponents) {
  auto mod = std::make_shared<ModuloIndex>(64, 5);
  PerThreadIndex idx({mod, mod});
  EXPECT_EQ(idx.name(), "per_thread{modulo,modulo}");
}

// ---------------------------------------------------------- smt cache ----

TEST(SmtSharedCache, PerThreadStatsSumToAggregate) {
  const Trace a = make_trace(20'000, 0x1000'0000, 4096, 3);
  const Trace b = make_trace(20'000, 0x5000'0000, 4096, 4);
  const Trace traces[] = {a, b};
  const ThreadedTrace stream = interleave_round_robin(traces);

  auto mod = std::make_shared<ModuloIndex>(1024, 5);
  SmtSharedCache cache(CacheGeometry::paper_l1(), {mod, mod});
  cache.run(stream);

  const auto& t0 = cache.thread_stats(0);
  const auto& t1 = cache.thread_stats(1);
  EXPECT_EQ(t0.accesses + t1.accesses, cache.stats().accesses);
  EXPECT_EQ(t0.hits + t1.hits, cache.stats().hits);
  EXPECT_EQ(t0.misses + t1.misses, cache.stats().misses);
  EXPECT_EQ(t0.accesses, a.size());
}

TEST(SmtSharedCache, DifferentMultipliersCanReduceInterference) {
  // Two threads with the same strided hot pattern: under a shared modulo
  // index they collide on the same sets; distinct odd multipliers spread
  // them (the paper's Figure 13 effect). Verified on a crafted workload.
  Trace a, b;
  for (int rep = 0; rep < 2000; ++rep) {
    for (int i = 0; i < 8; ++i) {
      a.append(0x1000'0000 + static_cast<std::uint64_t>(i) * 32 * 1024,
               AccessType::kRead);
      b.append(0x5000'0000 + static_cast<std::uint64_t>(i) * 32 * 1024,
               AccessType::kRead);
    }
  }
  const Trace traces[] = {a, b};
  const ThreadedTrace stream = interleave_round_robin(traces);

  auto mod = std::make_shared<ModuloIndex>(1024, 5);
  SmtSharedCache shared_modulo(CacheGeometry::paper_l1(), {mod, mod});
  shared_modulo.run(stream);

  auto odd9 = std::make_shared<OddMultiplierIndex>(1024, 5, 9);
  auto odd21 = std::make_shared<OddMultiplierIndex>(1024, 5, 21);
  SmtSharedCache multi(CacheGeometry::paper_l1(), {odd9, odd21});
  multi.run(stream);

  EXPECT_LT(multi.stats().misses, shared_modulo.stats().misses);
}

TEST(SmtRun, L2SeesOnlySharedL1Misses) {
  const Trace a = make_trace(10'000, 0x1000'0000, 2048, 5);
  const Trace b = make_trace(10'000, 0x5000'0000, 2048, 6);
  const Trace traces[] = {a, b};
  const ThreadedTrace stream = interleave_round_robin(traces);
  auto mod = std::make_shared<ModuloIndex>(1024, 5);
  SmtSharedCache cache(CacheGeometry::paper_l1(), {mod, mod});
  const SmtRunResult r = run_smt(cache, stream, CacheGeometry::paper_l2());
  EXPECT_EQ(r.l2.accesses, r.l1.misses);
  EXPECT_GT(r.amat, 1.0);
  EXPECT_EQ(r.per_thread.size(), 2u);
}

// ----------------------------------------------- partitioned adaptive ----

TEST(PartitionIndex, ConfinesThreadsToPartitions) {
  PartitionIndex idx(1024, 5, 2);
  EXPECT_EQ(idx.partition_sets(), 512u);
  idx.set_thread(0);
  for (std::uint64_t a = 0; a < 100; ++a) {
    EXPECT_LT(idx.index(a * 12345), 512u);
  }
  idx.set_thread(1);
  for (std::uint64_t a = 0; a < 100; ++a) {
    EXPECT_GE(idx.index(a * 12345), 512u);
    EXPECT_LT(idx.index(a * 12345), 1024u);
  }
}

TEST(PartitionIndex, RejectsBadShapes) {
  EXPECT_THROW(PartitionIndex(1024, 5, 3), Error);
  PartitionIndex ok(1024, 5, 4);
  EXPECT_THROW(ok.set_thread(4), Error);
}

TEST(PartitionedDirect, ThreadsAreIsolated) {
  // With static partitioning, thread 0's hit/miss sequence must not depend
  // on thread 1's behaviour at all.
  const Trace a = make_trace(20'000, 0x1000'0000, 2048, 7);
  const Trace b = make_trace(20'000, 0x5000'0000, 2048, 8);

  PartitionedDirectCache alone(CacheGeometry::paper_l1(), 2);
  for (const MemRef& r : a) alone.access(0, r);
  const std::uint64_t misses_alone = alone.thread_stats(0).misses;

  PartitionedDirectCache together(CacheGeometry::paper_l1(), 2);
  const Trace traces[] = {a, b};
  together.run(interleave_round_robin(traces));
  EXPECT_EQ(together.thread_stats(0).misses, misses_alone);
}

TEST(PartitionedAdaptive, SpillsIntoOtherPartition) {
  // Thread 0 thrashes two conflicting lines while thread 1 idles: the
  // shared SHT/OUT must preserve victims in thread 1's cold partition,
  // beating the statically partitioned direct-mapped cache.
  Trace a;
  for (int rep = 0; rep < 5000; ++rep) {
    a.append(0x1000'0000, AccessType::kRead);
    a.append(0x1000'0000 + 16 * 1024, AccessType::kRead);  // same partition set
  }
  PartitionedDirectCache direct(CacheGeometry::paper_l1(), 2);
  PartitionedAdaptiveCache adaptive(CacheGeometry::paper_l1(), 2);
  for (const MemRef& r : a) {
    direct.access(0, r);
    adaptive.access(0, r);
  }
  EXPECT_GT(direct.thread_stats(0).miss_rate(), 0.9) << "must thrash";
  EXPECT_LT(adaptive.thread_stats(0).miss_rate(), 0.1)
      << "adaptive spill must rescue the victims";
}

TEST(PartitionedAdaptive, StatsConsistency) {
  const Trace a = make_trace(15'000, 0x1000'0000, 2048, 9);
  const Trace b = make_trace(15'000, 0x5000'0000, 2048, 10);
  const Trace traces[] = {a, b};
  PartitionedAdaptiveCache cache(CacheGeometry::paper_l1(), 2);
  cache.run(interleave_round_robin(traces));
  EXPECT_EQ(cache.stats().accesses, 30'000u);
  EXPECT_EQ(cache.thread_stats(0).accesses, 15'000u);
  EXPECT_EQ(cache.thread_stats(1).accesses, 15'000u);
  EXPECT_EQ(cache.stats().hits + cache.stats().misses,
            cache.stats().accesses);
}

// ----------------------------------------------- way partitioning ----

TEST(WayPartitioned, RequiresDivisibleWays) {
  EXPECT_THROW(WayPartitionedCache(CacheGeometry{32 * 1024, 32, 2}, 3),
               Error);
  EXPECT_NO_THROW(WayPartitionedCache(CacheGeometry{32 * 1024, 32, 4}, 2));
}

TEST(WayPartitioned, AllocationConfinedToOwnWays) {
  // Thread 0 streams conflicting lines; thread 1's resident line in the
  // same set must survive because thread 0 cannot allocate into its way.
  WayPartitionedCache cache(CacheGeometry{32 * 1024, 32, 2}, 2);
  const MemRef t1_line{0x5000'0000, AccessType::kRead};
  cache.access(1, t1_line);
  // Thread 0 lines that map to the same set (16KB stride at 512 sets).
  const std::uint64_t set_stride = 512 * 32;
  for (int i = 0; i < 10; ++i) {
    cache.access(0, {0x5000'0000 + static_cast<std::uint64_t>(i + 1) *
                                      set_stride,
                     AccessType::kRead});
  }
  EXPECT_TRUE(cache.access(1, t1_line).hit)
      << "thread 0's thrashing must not evict thread 1's line";
}

TEST(WayPartitioned, LookupSharedAcrossWays) {
  // A line allocated by thread 0 hits for thread 1 (shared read path).
  WayPartitionedCache cache(CacheGeometry{32 * 1024, 32, 2}, 2);
  const MemRef line{0x1234'0000, AccessType::kRead};
  cache.access(0, line);
  EXPECT_TRUE(cache.access(1, line).hit);
  EXPECT_EQ(cache.thread_stats(1).hits, 1u);
}

TEST(WayPartitioned, EquivalentToSetPartitioningForDisjointThreads) {
  // With disjoint address spaces both partitionings give each thread an
  // isolated 16 KB direct-mapped slice: per-thread miss counts match.
  const Trace a = make_trace(20'000, 0x1000'0000, 1024, 21);
  const Trace b = make_trace(20'000, 0x5000'0000, 1024, 22);
  const Trace traces[] = {a, b};
  const ThreadedTrace stream = interleave_round_robin(traces);

  WayPartitionedCache ways(CacheGeometry{32 * 1024, 32, 2}, 2);
  ways.run(stream);
  PartitionedDirectCache sets(CacheGeometry::paper_l1(), 2);
  sets.run(stream);
  EXPECT_EQ(ways.thread_stats(0).misses, sets.thread_stats(0).misses);
  EXPECT_EQ(ways.thread_stats(1).misses, sets.thread_stats(1).misses);
}

TEST(WayPartitioned, StatsConsistency) {
  const Trace a = make_trace(15'000, 0x1000'0000, 2048, 23);
  const Trace b = make_trace(15'000, 0x5000'0000, 2048, 24);
  const Trace traces[] = {a, b};
  WayPartitionedCache cache(CacheGeometry{32 * 1024, 32, 2}, 2);
  cache.run(interleave_round_robin(traces));
  EXPECT_EQ(cache.stats().accesses, 30'000u);
  EXPECT_EQ(cache.stats().hits + cache.stats().misses, 30'000u);
  EXPECT_EQ(cache.thread_stats(0).accesses + cache.thread_stats(1).accesses,
            30'000u);
  cache.flush();
  EXPECT_EQ(cache.stats().accesses, 0u);
}

}  // namespace
}  // namespace canu
