// Tests for the write-back/write-allocate modeling: dirty bits, writeback
// counting, and dirty-bit preservation across the relocation mechanisms.
#include <gtest/gtest.h>

#include "assoc/column_associative.hpp"
#include "assoc/partner_cache.hpp"
#include "cache/set_assoc_cache.hpp"
#include "cache/victim_cache.hpp"
#include "core/scheme.hpp"
#include "util/rng.hpp"
#include "workloads/workload.hpp"

namespace canu {
namespace {

constexpr std::uint64_t kCache = 32 * 1024;

TEST(WriteTraffic, ReadOnlyTraceProducesNoWritebacks) {
  SetAssocCache cache(CacheGeometry::paper_l1());
  Xoshiro256 rng(1);
  for (int i = 0; i < 100'000; ++i) {
    cache.access(rng.below(8192) * 32, AccessType::kRead);
  }
  EXPECT_EQ(cache.stats().write_accesses, 0u);
  EXPECT_EQ(cache.stats().writebacks, 0u);
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(WriteTraffic, DirtyEvictionCountsOnce) {
  SetAssocCache cache(CacheGeometry::paper_l1());
  cache.access(0, AccessType::kWrite);       // install dirty (write-allocate)
  cache.access(kCache, AccessType::kRead);   // evicts dirty line 0
  EXPECT_EQ(cache.stats().write_accesses, 1u);
  EXPECT_EQ(cache.stats().writebacks, 1u);
  cache.access(2 * kCache, AccessType::kRead);  // evicts clean line
  EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(WriteTraffic, WriteHitMarksDirty) {
  SetAssocCache cache(CacheGeometry::paper_l1());
  cache.access(0, AccessType::kRead);    // clean install
  cache.access(0, AccessType::kWrite);   // hit marks dirty
  cache.access(kCache, AccessType::kRead);
  EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(WriteTraffic, WritebacksNeverExceedWritePlusEvictions) {
  WorkloadParams p;
  p.scale = 0.25;
  for (const char* w : {"fft", "qsort", "sha"}) {
    const Trace t = generate_workload(w, p);
    SetAssocCache cache(CacheGeometry::paper_l1());
    for (const MemRef& r : t) cache.access(r.addr, r.type);
    EXPECT_LE(cache.stats().writebacks, cache.stats().evictions) << w;
    EXPECT_LE(cache.stats().writebacks, cache.stats().write_accesses) << w;
  }
}

TEST(WriteTraffic, ColumnRelocationCarriesDirtyBit) {
  ColumnAssociativeCache cache(CacheGeometry::paper_l1());
  const std::uint64_t a = 0, b = kCache;
  cache.access(a, AccessType::kWrite);  // a dirty at set 0
  cache.access(b, AccessType::kRead);   // a relocated (not written back)
  EXPECT_EQ(cache.stats().writebacks, 0u)
      << "relocation must not count as a writeback";
  // Now displace a from its alternate slot: block c's primary slot is 512
  // and carries the rehash-bit short circuit.
  cache.access(512 * 32, AccessType::kRead);
  EXPECT_EQ(cache.stats().writebacks, 1u)
      << "the relocated dirty block finally left the cache";
}

TEST(WriteTraffic, VictimBufferCarriesDirtyBit) {
  VictimCache cache(CacheGeometry::paper_l1(), 2);
  const std::uint64_t a = 0;
  cache.access(a, AccessType::kWrite);           // a dirty
  cache.access(kCache, AccessType::kRead);       // a -> victim buffer
  EXPECT_EQ(cache.stats().writebacks, 0u);
  cache.access(2 * kCache, AccessType::kRead);   // old primary -> buffer
  cache.access(3 * kCache, AccessType::kRead);   // pushes a out of 2-entry buffer
  EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(WriteTraffic, AllModelsCountWriteAccesses) {
  WorkloadParams p;
  p.scale = 0.125;
  const Trace t = generate_workload("fft", p);
  std::uint64_t expected_writes = 0;
  for (const MemRef& r : t) {
    expected_writes += (r.type == AccessType::kWrite);
  }
  for (const SchemeSpec& spec :
       {SchemeSpec::baseline(), SchemeSpec::set_assoc(4),
        SchemeSpec::column_associative(), SchemeSpec::adaptive_cache(),
        SchemeSpec::b_cache(), SchemeSpec::victim_cache(),
        SchemeSpec::partner_cache(), SchemeSpec::skewed_assoc(2)}) {
    auto model = build_l1_model(spec, CacheGeometry::paper_l1(), &t);
    for (const MemRef& r : t) model->access(r.addr, r.type);
    EXPECT_EQ(model->stats().write_accesses, expected_writes) << spec.label();
    EXPECT_LE(model->stats().writebacks, model->stats().write_accesses)
        << spec.label();
  }
}

}  // namespace
}  // namespace canu
