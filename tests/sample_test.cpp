// Sampled-interval replay suite (DESIGN.md §14): deterministic clustering
// (thread count and repetition must be unobservable), the probe bank's
// replication contract against the real cache models, the degenerate-trace
// fallback to exact replay, the feature-sidecar persistence contract
// (checksummed, versioned, regenerate-on-stale), and the PR's headline
// acceptance bound — on the full paper suite at scale 1.0, sampled replay
// must stay within 1 percentage point of exact miss rates on every scheme
// while running at least 10x faster on a warm trace cache.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "assoc/bcache.hpp"
#include "assoc/column_associative.hpp"
#include "cache/victim_cache.hpp"
#include "core/evaluator.hpp"
#include "sample/kmeans.hpp"
#include "sample/sample_plan.hpp"
#include "sim/runner.hpp"
#include "trace/chunk_features.hpp"
#include "trace/trace.hpp"
#include "trace/trace_cache.hpp"
#include "util/error.hpp"
#include "workloads/workload.hpp"

namespace canu {
namespace {

namespace fs = std::filesystem;

/// Scratch directory removed on scope exit.
class TempDir {
 public:
  explicit TempDir(const char* tag) {
    dir_ = (fs::temp_directory_path() /
            (std::string("canu_sample_test_") + tag + "_" +
             std::to_string(::getpid())))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  ~TempDir() { fs::remove_all(dir_); }
  const std::string& path() const noexcept { return dir_; }

 private:
  std::string dir_;
};

std::vector<double> synthetic_points(std::size_t n, std::size_t dim) {
  std::vector<double> points;
  points.reserve(n * dim);
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  for (std::size_t i = 0; i < n * dim; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    points.push_back(static_cast<double>(state >> 40) / 16777216.0);
  }
  return points;
}

// ---------------------------------------------------------------------------
// Deterministic k-means

TEST(KMeans, DeterministicForSeedAndIndependentOfRepetition) {
  const std::vector<double> points = synthetic_points(200, kFeatureDim);
  const KMeansResult a = kmeans(points, kFeatureDim, 8, 42);
  const KMeansResult b = kmeans(points, kFeatureDim, 8, 42);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.centroids, b.centroids);
  EXPECT_EQ(a.clusters, b.clusters);
}

TEST(KMeans, EffectiveKIsClampedToPointCount) {
  const std::vector<double> points = synthetic_points(3, 4);
  const KMeansResult r = kmeans(points, 4, 16, 1);
  EXPECT_LE(r.clusters, 3u);
  EXPECT_EQ(r.assignment.size(), 3u);
}

TEST(AutoClusterCount, ClampsToConfiguredRange) {
  EXPECT_EQ(auto_cluster_count(0), 6u);
  EXPECT_EQ(auto_cluster_count(128 * 10), 10u);
  EXPECT_EQ(auto_cluster_count(1u << 20), 96u);
}

TEST(StratifiedCi95, MatchesClosedForm) {
  EXPECT_EQ(stratified_ci95({1.0, 1.0}, {0.0, 0.0}, 2.0), 0.0);
  const double got = stratified_ci95({2.0, 2.0}, {1.0, 1.0}, 4.0);
  EXPECT_NEAR(got, 1.96 * std::sqrt(0.5), 1e-12);
}

// ---------------------------------------------------------------------------
// Probe bank: the inline probes must replicate the real models' hit/miss
// behaviour exactly — sampled replay leans on them for cold-start and drift
// corrections, so any divergence silently becomes estimator bias.

TEST(ProbeBank, VictimBCacheAndColumnProbesMatchRealModels) {
  WorkloadParams p;
  p.scale = 0.25;
  const Trace trace = generate_workload("synthetic_hotset", p);

  const CacheGeometry geom = CacheGeometry::paper_l1();
  VictimCache victim(geom, kProbeVictimEntries);
  BCache bcache(geom);  // default MF=2, BAS=8 — what `b_cache` evaluates
  ColumnAssociativeCache column(geom, nullptr);  // modulo indexing

  ProbeBank bank;
  for (const MemRef& r : trace) {
    bank.access(r.addr >> 5);
    victim.access(r.addr, r.type);
    bcache.access(r.addr, r.type);
    column.access(r.addr, r.type);
  }
  const auto misses = bank.take();
  EXPECT_EQ(misses[static_cast<std::size_t>(ProbeKind::kVictim)],
            victim.stats().misses);
  EXPECT_EQ(misses[static_cast<std::size_t>(ProbeKind::kBCache)],
            bcache.stats().misses);
  EXPECT_EQ(misses[static_cast<std::size_t>(ProbeKind::kColumnAssoc)],
            column.stats().misses);
}

TEST(ProbeBank, TakeResetsCountersButKeepsWarmState) {
  ProbeBank bank;
  for (std::uint64_t line = 0; line < 64; ++line) bank.access(line);
  const auto first = bank.take();
  EXPECT_EQ(first[0], 64u);  // all compulsory misses on the modulo probe
  for (std::uint64_t line = 0; line < 64; ++line) bank.access(line);
  const auto second = bank.take();
  EXPECT_EQ(second[0], 0u);  // warm: same lines all hit
  bank.reset();
  for (std::uint64_t line = 0; line < 64; ++line) bank.access(line);
  EXPECT_EQ(bank.take()[0], 64u);  // cold again after reset
}

// ---------------------------------------------------------------------------
// Clustering and sampled evaluation are deterministic: the thread count
// must be unobservable in sampled results, exactly as it is in exact ones.

EvalReport sampled_report(unsigned threads, double scale) {
  EvalOptions opt;
  opt.params.scale = scale;
  opt.threads = threads;
  opt.sample.enabled = true;
  Evaluator ev(opt);
  ev.add_paper_indexing_schemes();
  return ev.evaluate({"synthetic_hotset", "synthetic_strided"});
}

TEST(SampledReplay, DeterministicAcrossThreadCounts) {
  const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
  const EvalReport t1 = sampled_report(1, 0.5);
  const EvalReport t2 = sampled_report(2, 0.5);
  const EvalReport thw = sampled_report(hw, 0.5);
  ASSERT_EQ(t1.workloads, t2.workloads);
  ASSERT_EQ(t1.workloads, thw.workloads);
  ASSERT_EQ(t1.scheme_labels, t2.scheme_labels);
  for (const std::string& w : t1.workloads) {
    for (const std::string& s : t1.scheme_labels) {
      const EvalCell* a = t1.cell(w, s);
      const EvalCell* b = t2.cell(w, s);
      const EvalCell* c = thw.cell(w, s);
      ASSERT_NE(a, nullptr);
      ASSERT_NE(b, nullptr);
      ASSERT_NE(c, nullptr);
      EXPECT_EQ(a->run.miss_rate(), b->run.miss_rate()) << w << "/" << s;
      EXPECT_EQ(a->run.miss_rate(), c->run.miss_rate()) << w << "/" << s;
      EXPECT_EQ(a->run.amat, b->run.amat) << w << "/" << s;
      EXPECT_EQ(a->run.amat, c->run.amat) << w << "/" << s;
      EXPECT_EQ(a->run.sample.clusters, b->run.sample.clusters);
      EXPECT_EQ(a->run.sample.clusters, c->run.sample.clusters);
      EXPECT_EQ(a->run.sample.miss_rate_ci95, b->run.sample.miss_rate_ci95);
    }
  }
}

// ---------------------------------------------------------------------------
// Degenerate traces refuse to sample and fall back to exact replay with an
// annotation, bit-for-bit equal to a plain exact evaluation.

TEST(SampledReplay, DegenerateTraceFallsBackToExact) {
  FeatureSet tiny;
  tiny.intervals.resize(3);  // fewer intervals than any cluster count
  const SamplePlan plan = build_sample_plan(tiny, SampleOptions{});
  EXPECT_TRUE(plan.exact);
  EXPECT_NE(plan.reason.find("replayed exactly"), std::string::npos);

  EvalOptions opt;
  opt.params.scale = 0.01;  // ~4 K refs: fewer intervals than clusters
  opt.threads = 1;
  Evaluator exact_ev(opt);
  exact_ev.add_paper_indexing_schemes();
  exact_ev.add_paper_assoc_schemes();
  const EvalReport exact = exact_ev.evaluate({"synthetic_hotset"});
  opt.sample.enabled = true;
  Evaluator sampled_ev(opt);
  sampled_ev.add_paper_indexing_schemes();
  sampled_ev.add_paper_assoc_schemes();
  const EvalReport sampled = sampled_ev.evaluate({"synthetic_hotset"});

  ASSERT_EQ(exact.scheme_labels, sampled.scheme_labels);
  for (const std::string& s : exact.scheme_labels) {
    const EvalCell* e = exact.cell("synthetic_hotset", s);
    const EvalCell* m = sampled.cell("synthetic_hotset", s);
    ASSERT_NE(e, nullptr);
    ASSERT_NE(m, nullptr);
    EXPECT_FALSE(m->run.sample.sampled) << s;
    EXPECT_NE(m->run.sample.note.find("replayed exactly"),
              std::string::npos)
        << s;
    EXPECT_EQ(e->run.miss_rate(), m->run.miss_rate()) << s;
    EXPECT_EQ(e->run.amat, m->run.amat) << s;
  }
}

// ---------------------------------------------------------------------------
// Feature sidecar: checksummed, versioned, regenerated when stale.

std::uint64_t fnv1a(std::uint64_t h, const char* data, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(is), {});
}

void spew(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(FeatureSidecar, RoundTripsAndRegeneratesWhenStale) {
  TempDir dir("sidecar");
  TraceCache cache(dir.path());
  WorkloadParams p;
  p.scale = 0.1;
  const Trace trace = generate_workload("synthetic_hotset", p);
  const std::string key = "sidecar_test";
  cache.store(trace, key);

  const FeatureSet fresh = features_for_cached_trace(cache, key);
  EXPECT_EQ(fresh.total_refs, trace.size());
  EXPECT_TRUE(fresh.has_anchors());
  ASSERT_FALSE(fresh.intervals.empty());

  // Second call loads the persisted sidecar; the contract is equality.
  const std::string sidecar = feature_sidecar_path(cache, key);
  ASSERT_TRUE(fs::exists(sidecar));
  const FeatureSet loaded = features_for_cached_trace(cache, key);
  ASSERT_EQ(loaded.intervals.size(), fresh.intervals.size());
  for (std::size_t i = 0; i < fresh.intervals.size(); ++i) {
    EXPECT_EQ(loaded.intervals[i].refs, fresh.intervals[i].refs);
    EXPECT_EQ(loaded.intervals[i].values, fresh.intervals[i].values);
    EXPECT_EQ(loaded.intervals[i].anchor.file_offset,
              fresh.intervals[i].anchor.file_offset);
  }

  // Flipped payload byte: checksum mismatch, sidecar discarded on read.
  std::string bytes = slurp(sidecar);
  ASSERT_GT(bytes.size(), 64u);
  bytes[40] = static_cast<char>(bytes[40] ^ 0x5a);
  spew(sidecar, bytes);
  EXPECT_FALSE(read_feature_sidecar(sidecar).has_value());
  EXPECT_FALSE(fs::exists(sidecar));  // removed, not left to re-fail

  // Stale version with a *valid* checksum (a sidecar from an older build):
  // must also be discarded and regenerated.
  const FeatureSet regen = features_for_cached_trace(cache, key);
  ASSERT_EQ(regen.intervals.size(), fresh.intervals.size());
  bytes = slurp(sidecar);
  const std::size_t body_at = 8;                    // after the magic
  const std::size_t body_size = bytes.size() - 8 - 8;
  bytes[body_at] = static_cast<char>(kFeatureSidecarVersion - 1);
  const std::uint64_t sum =
      fnv1a(0xcbf29ce484222325ULL, bytes.data() + body_at, body_size);
  for (int i = 0; i < 8; ++i) {
    bytes[bytes.size() - 8 + static_cast<std::size_t>(i)] =
        static_cast<char>((sum >> (8 * i)) & 0xff);
  }
  spew(sidecar, bytes);
  EXPECT_FALSE(read_feature_sidecar(sidecar).has_value());
  const FeatureSet regen2 = features_for_cached_trace(cache, key);
  EXPECT_EQ(regen2.intervals.size(), fresh.intervals.size());
  EXPECT_TRUE(read_feature_sidecar(sidecar).has_value());
}

// ---------------------------------------------------------------------------
// Headline acceptance: on the paper's mibench set at scale 1.0 with a warm
// trace cache, sampled replay stays within 1 percentage point of the exact
// miss rate for every (workload, scheme) and is at least 10x faster.

TEST(SampledReplay, PaperSuiteErrorBoundAndSpeedup) {
  TempDir dir("acceptance");
  EvalOptions opt;
  opt.trace_cache_dir = dir.path();
  opt.threads = 0;  // evaluate exactly as the CLI default would

  // The CLI's `evaluate <suite> all` scheme set: every paper indexing and
  // associativity scheme — the acceptance bound covers all of them.
  const auto add_all_schemes = [](Evaluator& ev) {
    ev.add_paper_indexing_schemes();
    ev.add_paper_assoc_schemes();
  };

  // Warm pass: generates traces, feature sidecars, and trained index
  // functions so the timed comparison below measures replay, not I/O.
  opt.sample.enabled = true;
  {
    Evaluator warm(opt);
    add_all_schemes(warm);
    warm.evaluate(paper_mibench_set());
  }

  using Clock = std::chrono::steady_clock;
  opt.sample.enabled = false;
  Evaluator exact_ev(opt);
  add_all_schemes(exact_ev);
  const auto t0 = Clock::now();
  const EvalReport exact = exact_ev.evaluate(paper_mibench_set());
  const auto t1 = Clock::now();
  opt.sample.enabled = true;
  Evaluator sampled_ev(opt);
  add_all_schemes(sampled_ev);
  const auto t2 = Clock::now();
  const EvalReport sampled = sampled_ev.evaluate(paper_mibench_set());
  const auto t3 = Clock::now();

  ASSERT_EQ(exact.workloads, sampled.workloads);
  ASSERT_EQ(exact.scheme_labels, sampled.scheme_labels);
  for (const std::string& w : exact.workloads) {
    for (const std::string& s : exact.scheme_labels) {
      const EvalCell* e = exact.cell(w, s);
      const EvalCell* m = sampled.cell(w, s);
      ASSERT_NE(e, nullptr) << w << "/" << s;
      ASSERT_NE(m, nullptr) << w << "/" << s;
      EXPECT_TRUE(m->run.sample.sampled) << w << "/" << s;
      EXPECT_GT(m->run.sample.miss_rate_ci95, 0.0) << w << "/" << s;
      EXPECT_NEAR(m->run.miss_rate(), e->run.miss_rate(), 0.01)
          << w << "/" << s;
    }
  }

  const double exact_s = std::chrono::duration<double>(t1 - t0).count();
  const double sampled_s = std::chrono::duration<double>(t3 - t2).count();
  EXPECT_GE(exact_s / sampled_s, 10.0)
      << "sampled replay too slow: exact " << exact_s << "s vs sampled "
      << sampled_s << "s";
}

}  // namespace
}  // namespace canu
