// Tests for the replacement-policy battery of SetAssocCache: LRU, FIFO,
// random, tree-PLRU and SRRIP.
#include <gtest/gtest.h>

#include "cache/set_assoc_cache.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace canu {
namespace {

constexpr std::uint64_t kLine = 32;

Trace random_trace(std::size_t n, std::uint64_t lines, std::uint64_t seed) {
  Trace t("random");
  Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    t.append(rng.below(lines) * kLine, AccessType::kRead);
  }
  return t;
}

/// Conflicting addresses: way w of logical "tall set" in a cache of
/// `capacity` bytes: distinct tags, same index.
std::uint64_t conflict_addr(std::uint64_t way, std::uint64_t capacity) {
  return way * capacity;
}

// ---------------------------------------------------------------- plru ----

TEST(Plru, RequiresPow2Ways) {
  // 32KB, 48-byte... use 3-way geometry via 96-byte-way capacity: ways=3
  // is impossible with pow2 sets; build 2 sets * 3 ways = 192 bytes.
  CacheGeometry g{6 * 32, 32, 3};
  EXPECT_THROW(SetAssocCache(g, nullptr, ReplacementPolicy::kPlru), Error);
  EXPECT_NO_THROW(SetAssocCache(CacheGeometry{4 * 32, 32, 4}, nullptr,
                                ReplacementPolicy::kPlru));
}

TEST(Plru, TwoWayBehavesLikeLru) {
  // With 2 ways the PLRU tree is exact LRU: identical hit/miss sequences.
  const Trace t = random_trace(50'000, 1024, 3);
  SetAssocCache lru(CacheGeometry{16 * 1024, 32, 2});
  SetAssocCache plru(CacheGeometry{16 * 1024, 32, 2}, nullptr,
                     ReplacementPolicy::kPlru);
  for (const MemRef& r : t) {
    ASSERT_EQ(lru.access(r.addr).hit, plru.access(r.addr).hit);
  }
}

TEST(Plru, ProtectsMostRecentlyUsedWay) {
  // 4-way single-set cache: fill a,b,c,d; touch a; insert e.
  // PLRU may not evict exact-LRU b, but must never evict just-touched a.
  const CacheGeometry g{4 * 32, 32, 4};
  SetAssocCache cache(g, nullptr, ReplacementPolicy::kPlru);
  const std::uint64_t cap = 4 * 32;
  for (std::uint64_t w = 0; w < 4; ++w) cache.access(conflict_addr(w, cap));
  cache.access(conflict_addr(0, cap));  // touch a
  cache.access(conflict_addr(4, cap));  // insert e
  EXPECT_TRUE(cache.contains(conflict_addr(0, cap)));
}

TEST(Plru, NearLruQualityOnRandomTraces) {
  const Trace t = random_trace(200'000, 2048, 5);
  SetAssocCache lru(CacheGeometry{32 * 1024, 32, 8});
  SetAssocCache plru(CacheGeometry{32 * 1024, 32, 8}, nullptr,
                     ReplacementPolicy::kPlru);
  for (const MemRef& r : t) {
    lru.access(r.addr);
    plru.access(r.addr);
  }
  // PLRU should track true LRU within a few percent on random traffic.
  EXPECT_NEAR(static_cast<double>(plru.stats().misses),
              static_cast<double>(lru.stats().misses),
              static_cast<double>(lru.stats().misses) * 0.05);
}

TEST(Plru, NameCarriesPolicy) {
  SetAssocCache cache(CacheGeometry{32 * 1024, 32, 4}, nullptr,
                      ReplacementPolicy::kPlru);
  EXPECT_EQ(cache.name(), "4way-plru[modulo]");
}

// --------------------------------------------------------------- srrip ----

TEST(Srrip, HitPromotesLine) {
  // 2-way single set: fill a,b; touch a repeatedly; insert c,d.
  // a (rrpv 0) must survive the first replacement.
  const CacheGeometry g{2 * 32, 32, 2};
  SetAssocCache cache(g, nullptr, ReplacementPolicy::kSrrip);
  const std::uint64_t cap = 2 * 32;
  cache.access(conflict_addr(0, cap));  // a: rrpv 2
  cache.access(conflict_addr(1, cap));  // b: rrpv 2
  cache.access(conflict_addr(0, cap));  // a: rrpv 0
  cache.access(conflict_addr(2, cap));  // c evicts b (aged to 3 first)
  EXPECT_TRUE(cache.contains(conflict_addr(0, cap)));
  EXPECT_FALSE(cache.contains(conflict_addr(1, cap)));
}

TEST(Srrip, ResistsScanningBetterThanLru) {
  // Mixed workload: a small hot set with short re-reference intervals
  // (back-to-back double touches) interleaved with a one-shot scan.
  // LRU lets the scan flush the hot lines every round; SRRIP inserts scan
  // lines at a long re-reference interval and keeps the re-referenced hot
  // lines (RRPV 0) resident across rounds.
  Trace t;
  std::uint64_t scan_cursor = 1u << 24;
  for (int round = 0; round < 400; ++round) {
    for (int h = 0; h < 16; ++h) {
      t.append(static_cast<std::uint64_t>(h) * kLine, AccessType::kRead);
      t.append(static_cast<std::uint64_t>(h) * kLine, AccessType::kRead);
      for (int sc = 0; sc < 4; ++sc) {
        t.append(scan_cursor, AccessType::kRead);
        scan_cursor += kLine;  // one-shot scan addresses
      }
    }
  }
  const CacheGeometry g{2 * 1024, 32, 8};  // 8 sets x 8 ways
  SetAssocCache lru(g);
  SetAssocCache srrip(g, nullptr, ReplacementPolicy::kSrrip);
  for (const MemRef& r : t) {
    lru.access(r.addr);
    srrip.access(r.addr);
  }
  EXPECT_LT(srrip.stats().misses, lru.stats().misses);
}

TEST(Srrip, StatsInvariants) {
  const Trace t = random_trace(80'000, 4096, 9);
  SetAssocCache cache(CacheGeometry{32 * 1024, 32, 4}, nullptr,
                      ReplacementPolicy::kSrrip);
  for (const MemRef& r : t) cache.access(r.addr);
  EXPECT_EQ(cache.stats().accesses, t.size());
  EXPECT_EQ(cache.stats().hits + cache.stats().misses, t.size());
}

// ------------------------------------------------- policy battery sweep ----

class PolicySweep : public ::testing::TestWithParam<ReplacementPolicy> {};

TEST_P(PolicySweep, DeterministicAndConsistent) {
  const Trace t = random_trace(60'000, 2048, 11);
  SetAssocCache c1(CacheGeometry{32 * 1024, 32, 4}, nullptr, GetParam(), 99);
  SetAssocCache c2(CacheGeometry{32 * 1024, 32, 4}, nullptr, GetParam(), 99);
  for (const MemRef& r : t) {
    ASSERT_EQ(c1.access(r.addr).hit, c2.access(r.addr).hit);
  }
  EXPECT_EQ(c1.stats().hits + c1.stats().misses, c1.stats().accesses);
}

TEST_P(PolicySweep, RepeatedWorkingSetThatFitsAlwaysHits) {
  // Any reasonable policy keeps a working set that fits the cache: after
  // the compulsory pass, everything hits.
  SetAssocCache cache(CacheGeometry{32 * 1024, 32, 4}, nullptr, GetParam());
  for (int rep = 0; rep < 3; ++rep) {
    for (std::uint64_t i = 0; i < 1024; ++i) {
      cache.access(i * kLine);
    }
  }
  EXPECT_EQ(cache.stats().misses, 1024u);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicySweep,
    ::testing::Values(ReplacementPolicy::kLru, ReplacementPolicy::kFifo,
                      ReplacementPolicy::kRandom, ReplacementPolicy::kPlru,
                      ReplacementPolicy::kSrrip),
    [](const ::testing::TestParamInfo<ReplacementPolicy>& info) {
      return replacement_policy_name(info.param);
    });

}  // namespace
}  // namespace canu
