// Unit + property tests for src/indexing: every scheme of the paper's
// Section II.
#include <set>

#include <gtest/gtest.h>

#include "indexing/factory.hpp"
#include "indexing/givargis.hpp"
#include "indexing/givargis_xor.hpp"
#include "indexing/modulo.hpp"
#include "indexing/odd_multiplier.hpp"
#include "indexing/patel.hpp"
#include "indexing/prime_modulo.hpp"
#include "indexing/xor_index.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace canu {
namespace {

Trace make_profile(std::size_t n = 2000, std::uint64_t seed = 3) {
  Trace t("profile");
  Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    t.append(0x1000'0000 + rng.below(1 << 20), AccessType::kRead);
  }
  return t;
}

// ------------------------------------------------------------- modulo ----

TEST(ModuloIndex, ExtractsTraditionalIndexBits) {
  ModuloIndex idx(1024, 5);  // the paper's configuration
  EXPECT_EQ(idx.index(0), 0u);
  EXPECT_EQ(idx.index(32), 1u);            // one line up
  EXPECT_EQ(idx.index(32 * 1024), 0u);     // wraps at cache size
  EXPECT_EQ(idx.index(32 * 1023), 1023u);  // last set
  EXPECT_EQ(idx.sets(), 1024u);
  EXPECT_EQ(idx.index_bits(), 10u);
}

TEST(ModuloIndex, OffsetBitsIgnored) {
  ModuloIndex idx(1024, 5);
  for (std::uint64_t off = 0; off < 32; ++off) {
    EXPECT_EQ(idx.index(0x1234000 + off), idx.index(0x1234000));
  }
}

TEST(ModuloIndex, RejectsNonPow2Sets) {
  EXPECT_THROW(ModuloIndex(1000, 5), Error);
}

// ---------------------------------------------------------------- xor ----

TEST(XorIndex, XorsTagLowBitsIntoIndex) {
  XorIndex idx(16, 2);  // 4 index bits at [2..6), tag bits at [6..10)
  // addr: index field = 0b0011, tag low bits = 0b0101 -> 0b0110.
  const std::uint64_t addr = (0b0101u << 6) | (0b0011u << 2);
  EXPECT_EQ(idx.index(addr), 0b0110u);
}

TEST(XorIndex, ConflictingAddressesSeparated) {
  // Two addresses with identical index fields but different tags must land
  // in different sets (the XOR rationale in paper §II.D).
  XorIndex idx(1024, 5);
  const std::uint64_t a = (std::uint64_t{1} << 15) | (7u << 5);
  const std::uint64_t b = (std::uint64_t{2} << 15) | (7u << 5);
  EXPECT_NE(idx.index(a), idx.index(b));
}

// ----------------------------------------------------- odd multiplier ----

TEST(OddMultiplierIndex, MatchesFormula) {
  // index = (p*T + I) mod s  (paper eq. (4))
  OddMultiplierIndex idx(1024, 5, 21);
  const std::uint64_t tag = 37, index_field = 100;
  const std::uint64_t addr = (tag << 15) | (index_field << 5);
  EXPECT_EQ(idx.index(addr), (21 * tag + index_field) % 1024);
}

TEST(OddMultiplierIndex, RecommendedMultipliersAccepted) {
  for (std::uint64_t m : OddMultiplierIndex::kRecommendedMultipliers) {
    OddMultiplierIndex idx(1024, 5, m);
    EXPECT_EQ(idx.multiplier(), m);
    EXPECT_LT(idx.index(0xdeadbeef), 1024u);
  }
}

TEST(OddMultiplierIndex, RejectsEvenMultiplier) {
  EXPECT_THROW(OddMultiplierIndex(1024, 5, 10), Error);
}

TEST(OddMultiplierIndex, NameIncludesMultiplier) {
  EXPECT_EQ(OddMultiplierIndex(64, 5, 31).name(), "odd_multiplier(31)");
}

// ------------------------------------------------------- prime modulo ----

TEST(PrimeModuloIndex, UsesLargestPrimeBelowSets) {
  PrimeModuloIndex idx(1024, 5);
  EXPECT_EQ(idx.prime(), 1021u);
  EXPECT_EQ(idx.sets(), 1021u);
  EXPECT_EQ(idx.physical_sets(), 1024u);
}

TEST(PrimeModuloIndex, MatchesFormula) {
  PrimeModuloIndex idx(1024, 5);
  const std::uint64_t addr = 0x12345678;
  EXPECT_EQ(idx.index(addr), (addr >> 5) % 1021);
}

TEST(PrimeModuloIndex, FragmentationReported) {
  PrimeModuloIndex idx(1024, 5);
  EXPECT_NEAR(idx.fragmentation(), 3.0 / 1024.0, 1e-12);
}

TEST(PrimeModuloIndex, NeverProducesFragmentedSets) {
  PrimeModuloIndex idx(128, 5);  // prime = 127
  Xoshiro256 rng(11);
  for (int i = 0; i < 20'000; ++i) {
    EXPECT_LT(idx.index(rng.next()), 127u);
  }
}

// ----------------------------------------------------------- givargis ----

TEST(Givargis, QualityOfBalancedBitIsOne) {
  // Addresses alternate bit 5: perfectly balanced -> quality 1.
  Trace t;
  for (int i = 0; i < 64; ++i) {
    t.append(static_cast<std::uint64_t>(i) << 5, AccessType::kRead);
  }
  GivargisOptions opt;
  opt.candidate_window = 6;
  const auto a = GivargisIndex::analyse(t, 2, 5, opt);
  // Candidate bits start at 5 (offset bits excluded); bit 5 alternates.
  EXPECT_DOUBLE_EQ(a.quality[0], 1.0);
}

TEST(Givargis, ConstantBitHasZeroQuality) {
  Trace t;
  for (int i = 0; i < 32; ++i) {
    // Bit 10 is always set.
    t.append((1u << 10) | (static_cast<std::uint64_t>(i) << 5),
             AccessType::kRead);
  }
  GivargisOptions opt;
  opt.candidate_window = 8;
  const auto a = GivargisIndex::analyse(t, 2, 5, opt);
  // Bit 10 is candidate index 5 (candidates 5,6,7,8,9,10,11,12).
  EXPECT_DOUBLE_EQ(a.quality[5], 0.0);
}

TEST(Givargis, SelectsRequestedNumberOfBits) {
  const Trace profile = make_profile();
  GivargisIndex idx(profile, 64, 5);
  EXPECT_EQ(idx.selected_bits().size(), 6u);
  EXPECT_EQ(idx.sets(), 64u);
}

TEST(Givargis, SelectedBitsAboveOffset) {
  const Trace profile = make_profile();
  GivargisIndex idx(profile, 64, 5);
  for (unsigned b : idx.selected_bits()) EXPECT_GE(b, 5u);
}

TEST(Givargis, AvoidsPerfectlyCorrelatedDuplicate) {
  // Construct addresses where bit 6 == bit 7 always (fully correlated) and
  // bits 5, 8 are independent: selection must not take both 6 and 7.
  Trace t;
  Xoshiro256 rng(4);
  for (int i = 0; i < 512; ++i) {
    const std::uint64_t b5 = rng.below(2), b6 = rng.below(2),
                        b8 = rng.below(2);
    t.append((b5 << 5) | (b6 << 6) | (b6 << 7) | (b8 << 8),
             AccessType::kRead);
  }
  GivargisOptions opt;
  opt.candidate_window = 4;
  const auto a = GivargisIndex::analyse(t, 3, 5, opt);
  const std::set<unsigned> chosen(a.selected_bits.begin(),
                                  a.selected_bits.end());
  EXPECT_FALSE(chosen.count(6) && chosen.count(7))
      << "picked both of a perfectly correlated pair";
}

TEST(Givargis, EmptyProfileThrows) {
  Trace empty;
  EXPECT_THROW(GivargisIndex(empty, 64, 5), Error);
}

TEST(GivargisXor, SelectsTagBitsOnly) {
  const Trace profile = make_profile();
  GivargisXorIndex idx(profile, 64, 5);  // tag region starts at bit 11
  for (unsigned b : idx.selected_tag_bits()) EXPECT_GE(b, 11u);
  EXPECT_EQ(idx.selected_tag_bits().size(), 6u);
}

TEST(GivargisXor, ReducesToIndexWhenTagHashZero) {
  // With all tag bits zero, the XOR contributes nothing.
  Trace t;
  for (int i = 0; i < 64; ++i) {
    t.append(static_cast<std::uint64_t>(i) << 5, AccessType::kRead);
  }
  GivargisXorIndex idx(t, 16, 5);
  const std::uint64_t addr = 7u << 5;  // index field = 7, tag = 0
  EXPECT_EQ(idx.index(addr), 7u);
}

// -------------------------------------------------------------- patel ----

TEST(Patel, FindsConflictFreeBitsOnCraftedTrace) {
  // Addresses differ only in bits [12..16): traditional low-index bits are
  // constant, so modulo indexing thrashes while the optimal choice is
  // conflict-free. Patel's search must find bits that separate them.
  Trace t;
  for (int rep = 0; rep < 4; ++rep) {
    for (std::uint64_t v = 0; v < 16; ++v) {
      t.append(v << 12, AccessType::kRead);
    }
  }
  PatelOptions opt;
  opt.candidate_window = 12;
  PatelOptimalIndex idx(t, 16, 5, opt);
  // 16 compulsory misses are unavoidable; the optimum has no conflicts.
  EXPECT_EQ(idx.best_cost(), 16u);
  // And the chosen function maps the 16 addresses to 16 distinct sets.
  std::set<std::uint64_t> sets;
  for (std::uint64_t v = 0; v < 16; ++v) sets.insert(idx.index(v << 12));
  EXPECT_EQ(sets.size(), 16u);
}

TEST(Patel, SearchesExpectedCombinationCount) {
  Trace t = make_profile(200);
  PatelOptions opt;
  opt.candidate_window = 8;
  PatelOptimalIndex idx(t, 16, 5, opt);  // C(8,4) = 70
  EXPECT_EQ(idx.combinations_searched(), 70u);
}

TEST(Patel, RespectsCombinationCap) {
  Trace t = make_profile(100);
  PatelOptions opt;
  opt.candidate_window = 30;
  opt.max_combinations = 1000;  // C(30,4) = 27405 > cap
  EXPECT_THROW(PatelOptimalIndex(t, 16, 5, opt), Error);
}

TEST(Patel, CombinationCostMatchesDirectSimulation) {
  Trace t = make_profile(500, 9);
  const std::vector<unsigned> bits = {5, 6, 7, 8};
  const std::uint64_t cost =
      PatelOptimalIndex::combination_cost(t, bits, 16, 5);
  // Reference simulation.
  std::vector<std::uint64_t> resident(16, ~std::uint64_t{0});
  std::uint64_t misses = 0;
  for (const MemRef& r : t) {
    std::uint64_t set = 0;
    for (std::size_t i = 0; i < bits.size(); ++i) {
      set |= ((r.addr >> bits[i]) & 1) << i;
    }
    const std::uint64_t line = r.addr >> 5;
    if (resident[set] != line) {
      ++misses;
      resident[set] = line;
    }
  }
  EXPECT_EQ(cost, misses);
}

// ------------------------------------------------------------ factory ----

TEST(Factory, NamesRoundTrip) {
  for (IndexScheme s : kAllIndexSchemes) {
    EXPECT_EQ(parse_index_scheme(index_scheme_name(s)), s);
  }
  EXPECT_THROW(parse_index_scheme("nope"), Error);
}

TEST(Factory, ProfileRequirementEnforced) {
  EXPECT_THROW(
      make_index_function(IndexScheme::kGivargis, 64, 5, nullptr),
      Error);
  EXPECT_NO_THROW(make_index_function(IndexScheme::kXor, 64, 5, nullptr));
}

TEST(Factory, BuildsEverySchemeWithProfile) {
  const Trace profile = make_profile();
  IndexFactoryOptions opt;
  opt.patel_candidate_window = 8;
  for (IndexScheme s : kAllIndexSchemes) {
    auto fn = make_index_function(s, 16, 5, &profile, opt);
    ASSERT_NE(fn, nullptr) << index_scheme_name(s);
    EXPECT_LE(fn->sets(), 16u);
    EXPECT_FALSE(fn->name().empty());
  }
}

// --------------------------------------------- range property (TEST_P) ----

struct RangeCase {
  IndexScheme scheme;
  std::uint64_t sets;
  unsigned offset_bits;
};

class IndexRangeProperty : public ::testing::TestWithParam<RangeCase> {};

TEST_P(IndexRangeProperty, IndexAlwaysBelowSets) {
  const RangeCase c = GetParam();
  const Trace profile = make_profile(1500, 17);
  IndexFactoryOptions opt;
  opt.patel_candidate_window = 10;
  auto fn = make_index_function(c.scheme, c.sets, c.offset_bits, &profile, opt);
  Xoshiro256 rng(123);
  for (int i = 0; i < 20'000; ++i) {
    const std::uint64_t addr = rng.next() & ((std::uint64_t{1} << 34) - 1);
    EXPECT_LT(fn->index(addr), fn->sets());
  }
  // And on the profile's own addresses.
  for (const MemRef& r : profile) EXPECT_LT(fn->index(r.addr), fn->sets());
}

std::vector<RangeCase> range_cases() {
  std::vector<RangeCase> cases;
  for (IndexScheme s : kAllIndexSchemes) {
    for (std::uint64_t sets : {16ull, 64ull, 256ull}) {
      for (unsigned off : {4u, 5u, 6u}) {
        cases.push_back({s, sets, off});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, IndexRangeProperty, ::testing::ValuesIn(range_cases()),
    [](const ::testing::TestParamInfo<RangeCase>& info) {
      return index_scheme_name(info.param.scheme) + "_s" +
             std::to_string(info.param.sets) + "_o" +
             std::to_string(info.param.offset_bits);
    });

// Offset-invariance: all schemes must map every byte of one line to the
// same set (otherwise a line could straddle sets).
class IndexLineInvariance : public ::testing::TestWithParam<RangeCase> {};

TEST_P(IndexLineInvariance, SameLineSameSet) {
  const RangeCase c = GetParam();
  const Trace profile = make_profile(800, 29);
  IndexFactoryOptions opt;
  opt.patel_candidate_window = 10;
  auto fn = make_index_function(c.scheme, c.sets, c.offset_bits, &profile, opt);
  Xoshiro256 rng(77);
  const std::uint64_t line_size = std::uint64_t{1} << c.offset_bits;
  for (int i = 0; i < 2'000; ++i) {
    const std::uint64_t base = (rng.next() >> 20) & ~(line_size - 1);
    const std::uint64_t expect = fn->index(base);
    EXPECT_EQ(fn->index(base + rng.below(line_size)), expect);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, IndexLineInvariance, ::testing::ValuesIn(range_cases()),
    [](const ::testing::TestParamInfo<RangeCase>& info) {
      return index_scheme_name(info.param.scheme) + "_s" +
             std::to_string(info.param.sets) + "_o" +
             std::to_string(info.param.offset_bits);
    });

}  // namespace
}  // namespace canu
