// Golden parity of the batch simulation engine against the single-run
// reference path, plus trace-cache round-trips and the strict bench
// argument parser.
//
// The parity requirement is bit-for-bit: BatchRunner replays each chunk
// through independent per-scheme pipelines, so every counter, AMAT value
// and uniformity moment must equal what run_trace() produces for the same
// scheme over the same stream — chunk boundaries must not be observable.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "../bench/bench_common.hpp"
#include "core/scheme.hpp"
#include "result_matchers.hpp"
#include "sim/batch_runner.hpp"
#include "sim/runner.hpp"
#include "trace/trace_cache.hpp"
#include "workloads/workload.hpp"

namespace canu {
namespace {

WorkloadParams small_params() {
  WorkloadParams p;
  p.scale = 0.05;
  return p;
}

TEST(BatchRunnerParity, MatchesRunTraceForEverySchemeOnTwoWorkloads) {
  for (const std::string& workload : {std::string("fft"),
                                      std::string("qsort")}) {
    const Trace trace = generate_workload(workload, small_params());
    const std::vector<SchemeSpec> specs = paper_parity_schemes();

    // Reference: one run_trace per scheme, each with a fresh model.
    std::vector<RunResult> reference;
    for (const SchemeSpec& spec : specs) {
      auto model = build_l1_model(spec, CacheGeometry::paper_l1(), &trace);
      reference.push_back(run_trace(*model, trace));
    }

    // Batch: all schemes in one sweep, chunked smaller than the trace so
    // several chunk boundaries land inside the stream.
    BatchRunner runner;
    std::vector<std::unique_ptr<CacheModel>> models;
    for (const SchemeSpec& spec : specs) {
      models.push_back(build_l1_model(spec, CacheGeometry::paper_l1(), &trace));
      runner.add(*models.back());
    }
    SpanSource source(workload, trace.refs(), /*chunk_refs=*/4096);
    const std::vector<RunResult> batch = run_batch(runner, source);

    ASSERT_EQ(batch.size(), reference.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      SCOPED_TRACE(workload + " / " + specs[i].label());
      expect_same_result(batch[i], reference[i]);
    }
  }
}

TEST(BatchRunnerParity, ResetAllowsReuseAcrossWorkloads) {
  const Trace first = generate_workload("fft", small_params());
  const Trace second = generate_workload("crc", small_params());

  auto model = build_l1_model(SchemeSpec::indexing(IndexScheme::kXor),
                              CacheGeometry::paper_l1(), nullptr);
  BatchRunner runner;
  runner.add(*model);
  SpanSource s1("fft", first.refs());
  run_batch(runner, s1);

  runner.reset();
  model->flush();
  SpanSource s2("crc", second.refs());
  const RunResult reused = run_batch(runner, s2).front();

  auto fresh_model = build_l1_model(SchemeSpec::indexing(IndexScheme::kXor),
                                    CacheGeometry::paper_l1(), nullptr);
  const RunResult fresh = run_trace(*fresh_model, second);
  expect_same_result(reused, fresh);
}

TEST(BatchRunnerParity, ChunkSizeDoesNotChangeResults) {
  const Trace trace = generate_workload("dijkstra", small_params());
  std::vector<RunResult> per_chunk_size;
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{777},
                                  std::size_t{1} << 20}) {
    auto model = build_l1_model(SchemeSpec::column_associative(),
                                CacheGeometry::paper_l1(), nullptr);
    BatchRunner runner;
    runner.add(*model);
    SpanSource source("dijkstra", trace.refs(), chunk);
    per_chunk_size.push_back(run_batch(runner, source).front());
  }
  expect_same_result(per_chunk_size[0], per_chunk_size[1]);
  expect_same_result(per_chunk_size[0], per_chunk_size[2]);
}

class TraceCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("canu-trace-cache-test-" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "-" + std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(TraceCacheTest, RoundTripReproducesGeneratedTrace) {
  const WorkloadParams params = small_params();
  const TraceCache cache(dir_.string());
  const std::string key = workload_cache_key("crc", params);
  EXPECT_FALSE(cache.contains(key));

  // First call generates and stores; second call loads.
  const Trace generated = cached_workload_trace("crc", params, &cache);
  EXPECT_TRUE(cache.contains(key));
  EXPECT_EQ(cache.stores(), 1u);
  const Trace loaded = cached_workload_trace("crc", params, &cache);
  EXPECT_EQ(cache.hits(), 1u);

  ASSERT_EQ(loaded.size(), generated.size());
  EXPECT_EQ(loaded.name(), generated.name());
  for (std::size_t i = 0; i < generated.size(); ++i) {
    ASSERT_EQ(loaded.refs()[i], generated.refs()[i]) << "ref " << i;
  }
}

TEST_F(TraceCacheTest, StreamedSourceMatchesDirectGeneration) {
  const WorkloadParams params = small_params();
  const TraceCache cache(dir_.string());
  const Trace direct = generate_workload("adpcm", params);
  cached_workload_trace("adpcm", params, &cache);  // populate

  auto source = cache.open(workload_cache_key("adpcm", params),
                           /*chunk_refs=*/1000);
  ASSERT_NE(source, nullptr);
  EXPECT_EQ(source->name(), "adpcm");
  EXPECT_EQ(source->size_hint(), direct.size());

  Trace streamed("adpcm");
  pump(*source, streamed);
  ASSERT_EQ(streamed.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    ASSERT_EQ(streamed.refs()[i], direct.refs()[i]) << "ref " << i;
  }

  // rewind() restarts the stream for a second identical pass.
  source->rewind();
  Trace again("adpcm");
  pump(*source, again);
  EXPECT_EQ(again.size(), direct.size());
}

TEST_F(TraceCacheTest, CachedReplayGivesIdenticalRunResults) {
  const WorkloadParams params = small_params();
  const TraceCache cache(dir_.string());
  const Trace fresh = generate_workload("sha", params);
  const Trace cached_once = cached_workload_trace("sha", params, &cache);
  const Trace cached_twice = cached_workload_trace("sha", params, &cache);

  auto m1 = build_l1_model(SchemeSpec::baseline(), CacheGeometry::paper_l1(),
                           nullptr);
  auto m2 = build_l1_model(SchemeSpec::baseline(), CacheGeometry::paper_l1(),
                           nullptr);
  expect_same_result(run_trace(*m1, fresh), run_trace(*m2, cached_twice));
  EXPECT_EQ(cached_once.size(), cached_twice.size());
}

TEST_F(TraceCacheTest, DistinctParamsGetDistinctKeys) {
  WorkloadParams a = small_params();
  WorkloadParams b = small_params();
  b.seed = 2;
  WorkloadParams c = small_params();
  c.scale = 0.051;
  WorkloadParams d = small_params();
  d.address_base = 0x2000'0000;
  const std::string ka = workload_cache_key("fft", a);
  EXPECT_NE(ka, workload_cache_key("fft", b));
  EXPECT_NE(ka, workload_cache_key("fft", c));
  EXPECT_NE(ka, workload_cache_key("fft", d));
  EXPECT_NE(ka, workload_cache_key("crc", a));
}

TEST(BenchArgsTest, ParsesScaleAndCsv) {
  const char* argv[] = {"bench", "0.25", "--csv"};
  std::string error;
  const auto args = bench::try_parse_args(3, const_cast<char**>(argv), &error);
  ASSERT_TRUE(args.has_value()) << error;
  EXPECT_DOUBLE_EQ(args->scale, 0.25);
  EXPECT_TRUE(args->csv);
}

TEST(BenchArgsTest, DefaultsWithNoArguments) {
  const char* argv[] = {"bench"};
  const auto args = bench::try_parse_args(1, const_cast<char**>(argv));
  ASSERT_TRUE(args.has_value());
  EXPECT_DOUBLE_EQ(args->scale, 1.0);
  EXPECT_FALSE(args->csv);
  EXPECT_EQ(args->threads, 0u);
}

TEST(BenchArgsTest, ParsesThreadsInBothSpellings) {
  {
    const char* argv[] = {"bench", "--threads=4"};
    const auto args = bench::try_parse_args(2, const_cast<char**>(argv));
    ASSERT_TRUE(args.has_value());
    EXPECT_EQ(args->threads, 4u);
  }
  {
    const char* argv[] = {"bench", "0.5", "--threads", "2"};
    const auto args = bench::try_parse_args(4, const_cast<char**>(argv));
    ASSERT_TRUE(args.has_value());
    EXPECT_DOUBLE_EQ(args->scale, 0.5);
    EXPECT_EQ(args->threads, 2u);
  }
}

TEST(BenchArgsTest, RejectsGarbage) {
  const auto expect_rejects = [](std::vector<const char*> argv,
                                 const std::string& what) {
    std::string error;
    const auto args = bench::try_parse_args(
        static_cast<int>(argv.size()), const_cast<char**>(argv.data()), &error);
    EXPECT_FALSE(args.has_value()) << what;
    EXPECT_FALSE(error.empty()) << what;
  };
  expect_rejects({"bench", "bogus"}, "non-numeric scale");
  expect_rejects({"bench", "1.5x"}, "trailing junk after number");
  expect_rejects({"bench", "0"}, "zero scale");
  expect_rejects({"bench", "-1"}, "negative scale");
  expect_rejects({"bench", "--frobnicate"}, "unknown flag");
  expect_rejects({"bench", "0.5", "0.25"}, "two scales");
  expect_rejects({"bench", "--threads=0"}, "zero threads");
  expect_rejects({"bench", "--threads=abc"}, "non-numeric threads");
  expect_rejects({"bench", "--threads"}, "missing threads value");
}

}  // namespace
}  // namespace canu
