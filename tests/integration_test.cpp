// Cross-module integration and property tests: every cache organization is
// run against real workload traces and checked for the invariants that must
// hold regardless of scheme, plus the theoretical bounds the paper appeals
// to (fully-associative OPT as the floor).
#include <cctype>
#include <map>

#include <gtest/gtest.h>

#include "cache/belady.hpp"
#include "core/evaluator.hpp"
#include "core/scheme.hpp"
#include "sim/runner.hpp"
#include "stats/uniformity.hpp"
#include "workloads/workload.hpp"

namespace canu {
namespace {

WorkloadParams fast_params() {
  WorkloadParams p;
  p.scale = 0.25;
  return p;
}

struct ModelCase {
  std::string workload;
  std::string scheme_label;
  SchemeSpec spec;
};

std::vector<ModelCase> model_cases() {
  const std::vector<std::string> workloads = {"fft", "crc", "sjeng",
                                              "synthetic_hotset"};
  const std::vector<SchemeSpec> specs = {
      SchemeSpec::baseline(),
      SchemeSpec::indexing(IndexScheme::kXor),
      SchemeSpec::indexing(IndexScheme::kOddMultiplier),
      SchemeSpec::indexing(IndexScheme::kPrimeModulo),
      SchemeSpec::indexing(IndexScheme::kGivargis),
      SchemeSpec::indexing(IndexScheme::kGivargisXor),
      SchemeSpec::set_assoc(2),
      SchemeSpec::set_assoc(8),
      SchemeSpec::column_associative(),
      SchemeSpec::column_associative(IndexScheme::kOddMultiplier),
      SchemeSpec::adaptive_cache(),
      SchemeSpec::b_cache(),
      SchemeSpec::victim_cache(),
      SchemeSpec::partner_cache(),
      SchemeSpec::skewed_assoc(2),
  };
  std::vector<ModelCase> cases;
  for (const auto& w : workloads) {
    for (const auto& s : specs) {
      cases.push_back({w, s.label(), s});
    }
  }
  return cases;
}

class ModelInvariants : public ::testing::TestWithParam<ModelCase> {
 protected:
  static const Trace& trace_for(const std::string& name) {
    static std::map<std::string, Trace> cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
      it = cache.emplace(name, generate_workload(name, fast_params())).first;
    }
    return it->second;
  }
};

TEST_P(ModelInvariants, CountersAddUp) {
  const ModelCase& c = GetParam();
  const Trace& trace = trace_for(c.workload);
  auto model = build_l1_model(c.spec, CacheGeometry::paper_l1(), &trace);
  for (const MemRef& r : trace) model->access(r.addr, r.type);

  const CacheStats& s = model->stats();
  EXPECT_EQ(s.accesses, trace.size());
  EXPECT_EQ(s.hits + s.misses, s.accesses);
  EXPECT_EQ(s.hits, s.primary_hits + s.secondary_hits);
  EXPECT_GE(s.lookup_cycles, s.accesses);
  EXPECT_LE(s.lookup_cycles, s.accesses * 3);
}

TEST_P(ModelInvariants, PerSetCountersConsistent) {
  const ModelCase& c = GetParam();
  const Trace& trace = trace_for(c.workload);
  auto model = build_l1_model(c.spec, CacheGeometry::paper_l1(), &trace);
  for (const MemRef& r : trace) model->access(r.addr, r.type);

  std::uint64_t hits = 0, misses = 0;
  for (const SetStats& s : model->set_stats()) {
    hits += s.hits;
    misses += s.misses;
  }
  EXPECT_EQ(hits, model->stats().hits);
  EXPECT_EQ(misses, model->stats().misses);
}

TEST_P(ModelInvariants, RerunIsDeterministic) {
  const ModelCase& c = GetParam();
  const Trace& trace = trace_for(c.workload);
  auto m1 = build_l1_model(c.spec, CacheGeometry::paper_l1(), &trace);
  auto m2 = build_l1_model(c.spec, CacheGeometry::paper_l1(), &trace);
  for (const MemRef& r : trace) {
    m1->access(r.addr, r.type);
    m2->access(r.addr, r.type);
  }
  EXPECT_EQ(m1->stats().misses, m2->stats().misses);
  EXPECT_EQ(m1->stats().secondary_hits, m2->stats().secondary_hits);
}

TEST_P(ModelInvariants, OptIsTheFloor) {
  // Belady OPT on a fully-associative cache of the same capacity lower-
  // bounds every same-capacity organization (the paper's §III premise).
  const ModelCase& c = GetParam();
  const Trace& trace = trace_for(c.workload);
  auto model = build_l1_model(c.spec, CacheGeometry::paper_l1(), &trace);
  for (const MemRef& r : trace) model->access(r.addr, r.type);

  const CacheGeometry full{32 * 1024, 32,
                           static_cast<unsigned>(32 * 1024 / 32)};
  const OptResult opt = simulate_opt(trace, full);
  EXPECT_LE(opt.misses, model->stats().misses)
      << c.scheme_label << " on " << c.workload << " beat OPT — impossible";
}

TEST_P(ModelInvariants, RunnerAgreesWithDirectSimulation) {
  const ModelCase& c = GetParam();
  const Trace& trace = trace_for(c.workload);
  auto direct = build_l1_model(c.spec, CacheGeometry::paper_l1(), &trace);
  for (const MemRef& r : trace) direct->access(r.addr, r.type);

  auto via_runner = build_l1_model(c.spec, CacheGeometry::paper_l1(), &trace);
  const RunResult rr = run_trace(*via_runner, trace);
  EXPECT_EQ(rr.l1.misses, direct->stats().misses);
  EXPECT_GE(rr.amat, 1.0);
  EXPECT_LT(rr.amat, 120.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllModelsOnRealTraces, ModelInvariants,
    ::testing::ValuesIn(model_cases()),
    [](const ::testing::TestParamInfo<ModelCase>& info) {
      std::string name = info.param.workload + "_" + info.param.scheme_label;
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name;
    });

// ----------------------------------------------------- paper headline ----

TEST(PaperHeadline, ProgrammableAssociativityReducesMissesOnAverage) {
  // Figure 6's headline: all three programmable-associativity techniques
  // reduce misses on average across MiBench.
  EvalOptions opt;
  opt.params = fast_params();
  Evaluator ev(opt);
  ev.add_paper_assoc_schemes();
  const EvalReport rep = ev.evaluate(paper_mibench_set());
  const ComparisonTable t = rep.miss_reduction_table();
  for (const std::string& scheme : t.columns()) {
    EXPECT_GE(t.column_average(scheme), 0.0)
        << scheme << " increased misses on average";
  }
}

TEST(PaperHeadline, NoIndexingSchemeWinsEverywhere) {
  // The paper's core conclusion: no single indexing scheme improves every
  // application. Check that every scheme loses (or ties) on at least one
  // MiBench workload.
  EvalOptions opt;
  opt.params = fast_params();
  Evaluator ev(opt);
  ev.add_paper_indexing_schemes();
  const EvalReport rep = ev.evaluate(paper_mibench_set());
  for (const std::string& scheme : rep.scheme_labels) {
    bool loses_somewhere = false;
    for (const std::string& w : rep.workloads) {
      const EvalCell* cell = rep.cell(w, scheme);
      ASSERT_NE(cell, nullptr);
      if (cell->miss_reduction_pct <= 0.5) {
        loses_somewhere = true;
        break;
      }
    }
    EXPECT_TRUE(loses_somewhere)
        << scheme << " won everywhere — contradicts the paper's conclusion";
  }
}

}  // namespace
}  // namespace canu
