#!/usr/bin/env sh
# Machine-readable wall-clock timings for the perf-trajectory record.
#
# Usage: tools/bench_timings.sh <build-dir> [output.json]
#
# Runs the PR 2 reference benches — `canu evaluate mibench all` at scale
# 0.125 (cold and warm trace cache) and the fig04/fig06 figure benches
# (warm) — at the default thread count and at --threads 1 (the serial
# engine), plus the PR 4 server-throughput rows (32 mixed `canu submit`
# requests against one canud daemon, cold vs warm result cache), plus
# the PR 6 grid rows (one 16-cell `--grid` sweep vs the same 16 cells
# run as independent processes; `grid_speedup` = singles / grid), plus
# the PR 7 sampled-replay rows (`evaluate mibench all` at scale 1.0,
# exact vs `--sample`, both on a warm trace cache;
# `sampled_speedup` = exact / sampled), plus the PR 8 telemetry-overhead
# rows (warm server throughput with the always-on telemetry live vs a
# CANU_OBS_DISABLED build of the same tree, when one is supplied via
# CANU_OBS_DISABLED_BUILD_DIR; `telemetry_overhead_pct` = how much warm
# rps the live telemetry costs), plus the PR 9 fleet rows (aggregate
# warm-hit rps through `fleet_bench` against one daemon vs a 4-shard
# consistent-hash fleet — `fleet_scaling_x` = 4shard / 1shard, tagged
# with the host's core count since shards can only scale across real
# cores) and streamed-reply rows (first-byte latency of a cold 256-cell
# multi-workload `evaluate --grid` submit, `--stream` vs buffered;
# `first_byte_speedup` = buffered / streamed), and
# writes one JSON object per configuration to the output file (default
# BENCH_PR9.json). Timings are wall-clock seconds measured around the
# whole process. A run manifest with the engine's internal counters
# (trace-cache traffic, chunk handoffs, stall time) is captured from an
# instrumented warm run into <output>.manifest.json.
set -eu

BUILD_DIR=${1:?usage: tools/bench_timings.sh <build-dir> [output.json]}
OUT=${2:-BENCH_PR9.json}
# Optional second build tree configured with -DCANU_OBS_DISABLED=ON; when
# set, the telemetry-overhead comparison rows are emitted.
OBS_DISABLED_DIR=${CANU_OBS_DISABLED_BUILD_DIR:-}
CACHE_DIR=$(mktemp -d)
SOCK_DIR=$(mktemp -d)
SERVE_PID=
FLEET_PIDS=
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2> /dev/null || true
  for pid in $FLEET_PIDS; do kill "$pid" 2> /dev/null || true; done
  rm -rf "$CACHE_DIR" "$SOCK_DIR"
}
trap cleanup EXIT
export CANU_TRACE_CACHE_DIR="$CACHE_DIR"

HW_THREADS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 1)

# measure <name> <threads> <cache-state> <cmd...>
measure() {
  name=$1 threads=$2 state=$3
  shift 3
  start=$(date +%s%N)
  "$@" > /dev/null
  end=$(date +%s%N)
  awk -v name="$name" -v threads="$threads" -v state="$state" \
      -v ns=$((end - start)) 'BEGIN {
    printf "  {\"bench\": \"%s\", \"threads\": %s, \"cache\": \"%s\", \"wall_s\": %.3f}",
           name, threads, state, ns / 1e9
  }' >> "$OUT.tmp"
}

sep() { printf ',\n' >> "$OUT.tmp"; }

: > "$OUT.tmp"
printf '[\n' > "$OUT.tmp"

CANU="$BUILD_DIR/tools/canu"
FIG04="$BUILD_DIR/bench/fig04_indexing_missrate"
FIG06="$BUILD_DIR/bench/fig06_assoc_missrate"

# Default thread count (hardware / CANU_THREADS): cold then warm cache.
measure evaluate_mibench_all "$HW_THREADS" cold \
  "$CANU" evaluate mibench all --scale=0.125; sep
measure evaluate_mibench_all "$HW_THREADS" warm \
  "$CANU" evaluate mibench all --scale=0.125; sep
measure fig04_indexing_missrate "$HW_THREADS" warm "$FIG04" 0.125; sep
measure fig06_assoc_missrate "$HW_THREADS" warm "$FIG06" 0.125; sep

# Serial engine for the single-thread trajectory.
measure evaluate_mibench_all 1 warm \
  "$CANU" evaluate mibench all --scale=0.125 --threads=1; sep
measure fig04_indexing_missrate 1 warm "$FIG04" 0.125 --threads 1; sep
measure fig06_assoc_missrate 1 warm "$FIG06" 0.125 --threads 1; sep

# One-pass config-grid sweep vs the same 16 cells run independently.
# The grid derives each reference's set index and line address once per
# (scheme, sets, line) class and fans it out to every member; the
# singles pass replays the trace 16 times. Both run on a warm trace
# cache so the comparison isolates replay cost.
grid_sweep() {
  "$CANU" evaluate crc --grid sets=512,1024 ways=1,2,4,8 line=32 \
    scheme=modulo,xor --scale=0.125
}
grid_sweep > /dev/null  # warm the crc trace
start=$(date +%s%N); grid_sweep > /dev/null; end=$(date +%s%N)
GRID_NS=$((end - start))
start=$(date +%s%N)
for gs in 512 1024; do
  for gw in 1 2 4 8; do
    for gsch in modulo xor; do
      "$CANU" evaluate crc --grid "sets=$gs" "ways=$gw" line=32 \
        "scheme=$gsch" --scale=0.125 > /dev/null
    done
  done
done
end=$(date +%s%N)
SINGLES_NS=$((end - start))
awk -v threads="$HW_THREADS" -v g="$GRID_NS" -v s="$SINGLES_NS" 'BEGIN {
  printf "  {\"bench\": \"evaluate_crc_grid16\", \"threads\": %s, \"cache\": \"warm\", \"cells\": 16, \"wall_s\": %.3f},\n",
         threads, g / 1e9
  printf "  {\"bench\": \"evaluate_crc_grid16_singles\", \"threads\": %s, \"cache\": \"warm\", \"cells\": 16, \"wall_s\": %.3f, \"grid_speedup\": %.2f}",
         threads, s / 1e9, s / g
}' >> "$OUT.tmp"
sep

# Sampled-interval replay vs exact, full paper suite at scale 1.0. Both
# passes run on a warm trace cache (traces, feature sidecars, and trained
# index functions persisted by the priming run), so the comparison
# isolates replay: every reference versus the representative windows.
"$CANU" evaluate mibench all --sample > /dev/null  # prime scale-1.0 state
start=$(date +%s%N)
"$CANU" evaluate mibench all > /dev/null
end=$(date +%s%N)
EXACT_NS=$((end - start))
start=$(date +%s%N)
"$CANU" evaluate mibench all --sample > /dev/null
end=$(date +%s%N)
SAMPLED_NS=$((end - start))
awk -v threads="$HW_THREADS" -v e="$EXACT_NS" -v s="$SAMPLED_NS" 'BEGIN {
  printf "  {\"bench\": \"evaluate_mibench_all_scale1_exact\", \"threads\": %s, \"cache\": \"warm\", \"scale\": 1.0, \"wall_s\": %.3f},\n",
         threads, e / 1e9
  printf "  {\"bench\": \"evaluate_mibench_all_scale1_sampled\", \"threads\": %s, \"cache\": \"warm\", \"scale\": 1.0, \"wall_s\": %.3f, \"sampled_speedup\": %.2f}",
         threads, s / 1e9, e / s
}' >> "$OUT.tmp"
sep

# Server throughput: one resident canud, 32 mixed submits. The cold pass
# simulates every request; the warm pass repeats the identical mix, so
# every reply comes from the result cache and the row measures pure
# protocol + dispatch overhead.
SOCK="$SOCK_DIR/canud.sock"
"$CANU" serve --socket="$SOCK" 2> /dev/null &
SERVE_PID=$!
i=0
while [ ! -S "$SOCK" ] && [ "$i" -lt 50 ]; do sleep 0.1; i=$((i + 1)); done

# 4 workloads x 8 schemes/verbs = 32 requests per pass. MIX_CANU/MIX_SOCK
# select the client binary and daemon (the overhead rows below swap in the
# obs-disabled build).
MIX_CANU="$CANU"
submit_mix() {
  for w in crc qsort sha fft; do
    for s in modulo xor odd_multiplier prime_modulo givargis 2way victim \
             partner; do
      "$MIX_CANU" submit run "$w" "$s" --scale=0.125 --socket="$MIX_SOCK" \
        > /dev/null
    done
  done
}
MIX_SOCK="$SOCK"

# measure_server <name> <cache-state>: 32-request batch, derive req/s.
measure_server() {
  name=$1 state=$2
  start=$(date +%s%N)
  submit_mix
  end=$(date +%s%N)
  awk -v name="$name" -v state="$state" -v ns=$((end - start)) 'BEGIN {
    wall = ns / 1e9
    printf "  {\"bench\": \"%s\", \"requests\": 32, \"cache\": \"%s\", \"wall_s\": %.3f, \"rps\": %.1f}",
           name, state, wall, 32 / wall
  }' >> "$OUT.tmp"
}

measure_server server_mixed_submits cold; sep
measure_server server_mixed_submits warm

# Telemetry overhead: warm result-cache throughput prices the fixed
# per-request cost (histograms, windows, ring push) with no simulation
# noise. Compare the live daemon against a -DCANU_OBS_DISABLED=ON build.
start=$(date +%s%N); submit_mix; end=$(date +%s%N)
LIVE_WARM_NS=$((end - start))

kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || true
SERVE_PID=

if [ -n "$OBS_DISABLED_DIR" ]; then
  CANU_OFF="$OBS_DISABLED_DIR/tools/canu"
  [ -x "$CANU_OFF" ] || {
    echo "no obs-disabled canu at $CANU_OFF" >&2
    exit 2
  }
  MIX_SOCK="$SOCK_DIR/canud_off.sock"
  "$CANU_OFF" serve --socket="$MIX_SOCK" 2> /dev/null &
  SERVE_PID=$!
  i=0
  while [ ! -S "$MIX_SOCK" ] && [ "$i" -lt 50 ]; do sleep 0.1; i=$((i + 1)); done
  MIX_CANU="$CANU_OFF"
  submit_mix  # cold pass primes the result cache
  start=$(date +%s%N); submit_mix; end=$(date +%s%N)
  OFF_WARM_NS=$((end - start))
  kill -TERM "$SERVE_PID"
  wait "$SERVE_PID" || true
  SERVE_PID=
  sep
  awk -v live="$LIVE_WARM_NS" -v off="$OFF_WARM_NS" 'BEGIN {
    live_s = live / 1e9; off_s = off / 1e9
    printf "  {\"bench\": \"server_warm_telemetry_on\", \"requests\": 32, \"cache\": \"warm\", \"wall_s\": %.3f, \"rps\": %.1f},\n",
           live_s, 32 / live_s
    printf "  {\"bench\": \"server_warm_telemetry_off\", \"requests\": 32, \"cache\": \"warm\", \"wall_s\": %.3f, \"rps\": %.1f, \"telemetry_overhead_pct\": %.2f}",
           off_s, 32 / off_s, (live_s - off_s) * 100.0 / off_s
  }' >> "$OUT.tmp"
fi

sep

# Fleet warm-hit throughput: fleet_bench hammers warm `list` hits from 8
# in-process client threads (no fork/exec in the loop), first against one
# daemon, then against a 4-shard consistent-hash fleet. Shards scale across
# cores — on a multi-core host the 4-shard row approaches 4x — so the rows
# carry the measured core count: a 1-core CI box can only show parity, and
# `fleet_scaling_x` there prices the sharding overhead, not the scaling.
FLEET_BENCH="$BUILD_DIR/tools/fleet_bench"
ONE_SOCK="$SOCK_DIR/fleet1.sock"
"$CANU" serve --socket="$ONE_SOCK" 2> /dev/null &
SERVE_PID=$!
i=0
while [ ! -S "$ONE_SOCK" ] && [ "$i" -lt 50 ]; do sleep 0.1; i=$((i + 1)); done
ONE_RPS=$("$FLEET_BENCH" 5 8 "$ONE_SOCK" \
  | sed 's/.*"warm_rps": \([0-9.]*\).*/\1/')
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || true
SERVE_PID=

FLEET_EPS=""
for fi in 0 1 2 3; do
  FLEET_EPS="$FLEET_EPS${FLEET_EPS:+,}$SOCK_DIR/shard$fi.sock"
done
for fi in 0 1 2 3; do
  "$CANU" serve --socket="$SOCK_DIR/shard$fi.sock" --shard-id="shard$fi" \
    --peers="$FLEET_EPS" 2> /dev/null &
  FLEET_PIDS="$FLEET_PIDS $!"
done
for fi in 0 1 2 3; do
  i=0
  while [ ! -S "$SOCK_DIR/shard$fi.sock" ] && [ "$i" -lt 50 ]; do
    sleep 0.1
    i=$((i + 1))
  done
done
FOUR_RPS=$("$FLEET_BENCH" 5 8 "$FLEET_EPS" \
  | sed 's/.*"warm_rps": \([0-9.]*\).*/\1/')
for pid in $FLEET_PIDS; do kill -TERM "$pid" 2> /dev/null || true; done
for pid in $FLEET_PIDS; do wait "$pid" 2> /dev/null || true; done
FLEET_PIDS=
awk -v one="$ONE_RPS" -v four="$FOUR_RPS" -v cores="$HW_THREADS" 'BEGIN {
  printf "  {\"bench\": \"fleet_warm_1shard\", \"clients\": 8, \"cores\": %s, \"cache\": \"warm\", \"rps\": %.1f},\n",
         cores, one
  printf "  {\"bench\": \"fleet_warm_4shard\", \"clients\": 8, \"cores\": %s, \"cache\": \"warm\", \"rps\": %.1f, \"fleet_scaling_x\": %.2f}",
         cores, four, four / one
}' >> "$OUT.tmp"
sep

# Streamed vs buffered replies: a cold 256-cell, 4-workload `--grid`
# submit. `--stream` ships each workload's finished section as its own
# frame, so the first byte lands after one workload instead of after the
# whole sweep; the assembled bytes are identical either way (the fleet
# soak cmp-checks that). Both passes run cold on the daemon's result cache
# (distinct seeds) with a warm trace cache.
STREAM_SOCK="$SOCK_DIR/stream.sock"
"$CANU" serve --socket="$STREAM_SOCK" 2> /dev/null &
SERVE_PID=$!
i=0
while [ ! -S "$STREAM_SOCK" ] && [ "$i" -lt 50 ]; do sleep 0.1; i=$((i + 1)); done
grid256() {
  "$CANU" submit evaluate mibench_extra --grid \
    sets=512,1024,2048,4096 ways=1,2,4,8 line=16,32,64,128 \
    scheme=modulo,xor,odd_multiplier,prime_modulo \
    --scale=0.0625 --socket="$STREAM_SOCK" "$@"
}
# Warm the trace cache so both timed passes price replay + delivery only.
"$CANU" evaluate mibench_extra --grid \
  sets=512,1024,2048,4096 ways=1,2,4,8 line=16,32,64,128 \
  scheme=modulo,xor,odd_multiplier,prime_modulo \
  --scale=0.0625 --seed=99 > /dev/null

start=$(date +%s%N)
grid256 --seed=101 | {
  head -c 1 > /dev/null
  echo $(($(date +%s%N) - start)) > "$SOCK_DIR/fb_buffered"
  cat > /dev/null
}
BUF_TOTAL_NS=$(($(date +%s%N) - start))
BUF_FB_NS=$(cat "$SOCK_DIR/fb_buffered")

start=$(date +%s%N)
grid256 --seed=102 --stream | {
  head -c 1 > /dev/null
  echo $(($(date +%s%N) - start)) > "$SOCK_DIR/fb_streamed"
  cat > /dev/null
}
STREAM_TOTAL_NS=$(($(date +%s%N) - start))
STREAM_FB_NS=$(cat "$SOCK_DIR/fb_streamed")

kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || true
SERVE_PID=
awk -v bfb="$BUF_FB_NS" -v bt="$BUF_TOTAL_NS" \
    -v sfb="$STREAM_FB_NS" -v st="$STREAM_TOTAL_NS" 'BEGIN {
  printf "  {\"bench\": \"submit_grid256_buffered\", \"cells\": 256, \"workloads\": 4, \"cache\": \"cold\", \"first_byte_s\": %.3f, \"wall_s\": %.3f},\n",
         bfb / 1e9, bt / 1e9
  printf "  {\"bench\": \"submit_grid256_streamed\", \"cells\": 256, \"workloads\": 4, \"cache\": \"cold\", \"first_byte_s\": %.3f, \"wall_s\": %.3f, \"first_byte_speedup\": %.2f}",
         sfb / 1e9, st / 1e9, bfb / sfb
}' >> "$OUT.tmp"

printf '\n]\n' >> "$OUT.tmp"
mv "$OUT.tmp" "$OUT"
echo "wrote $OUT:"
cat "$OUT"

# Instrumented warm run: per-workload timing breakdown plus the engine's
# internal counters (outside the timed runs above, so instrumentation can
# never skew the recorded wall-clock numbers).
"$CANU" evaluate mibench all --scale=0.125 \
  --metrics-out="$OUT.manifest.json" > /dev/null
echo "wrote $OUT.manifest.json"
