// canu — unified command-line driver for the CANU framework.
//
// Run `canu` with no arguments for the full verb/flag listing (generated
// from the shared help tables in util/cli_flags.hpp). Simulation verbs
// (run, evaluate, advise, threec, list, version) execute through the same
// svc::run_verb used by the canud daemon, so `canu submit <verb> ...`
// against a running daemon produces byte-identical output to the direct
// CLI path.
//
// Service verbs:
//   canu serve    run the canud daemon on a Unix socket and/or TCP port
//   canu submit   send one request to a daemon, print its reply verbatim
//   canu status   print a daemon's admission/result-cache counters
//   canu metrics  print a daemon's live telemetry (JSON or Prometheus)
//   canu top      poll metrics and render a refreshing dashboard
//   canu drain    replay a cache journal onto a fleet (shard handoff)
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fleet/endpoints.hpp"
#include "fleet/fleet_client.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "obs/version.hpp"
#include "svc/client.hpp"
#include "svc/journal.hpp"
#include "svc/server.hpp"
#include "svc/verbs.hpp"
#include "trace/trace_io.hpp"
#include "util/cli_flags.hpp"
#include "util/error.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace canu;

struct CliArgs {
  std::vector<std::string> positional;
  WorkloadParams params;
  unsigned threads = 0;  ///< 0 = CANU_THREADS env var, else hardware
  std::string metrics_out;   ///< run-manifest path (empty = off)
  std::string trace_events;  ///< trace-event path (empty = off)
  bool progress = false;
  bool progress_force = false;  ///< heartbeat even when stderr is no TTY
  bool grid = false;            ///< evaluate: config-grid sweep mode
  bool sample = false;          ///< evaluate/advise: sampled replay
  std::string sample_clusters;  ///< --sample=K value ("" = auto)
  std::string sample_seed;      ///< --sample-seed value ("" = default)
  std::string max_error;        ///< --max-error value ("" = off)
  bool version = false;         ///< --version
  // Service endpoint + daemon tuning.
  std::string socket_path;
  std::string host = "127.0.0.1";
  int port = -1;
  std::size_t queue_capacity = 64;
  std::size_t result_cache_entries = 256;
  std::string meta_out;  ///< response-metadata JSON path (submit/status)
  std::uint64_t timeout_ms = 0;  ///< server-enforced deadline (0 = none)
  unsigned retry = 0;            ///< extra submit attempts on overload
  std::string cache_file;        ///< serve: persistent result journal
  std::string format;            ///< metrics: json (default) | prometheus
  bool recent = false;           ///< status: append the request-trace ring
  std::string recent_n;          ///< --recent=N value ("" = server default)
  std::uint64_t interval_ms = 1000;  ///< top: refresh period
  std::uint64_t top_count = 0;       ///< top: frames to render (0 = forever)
  long long slow_log_ms = -1;        ///< serve: slow-request threshold
  std::string slow_log_path;         ///< serve: slow-log file ("" = stderr)
  // Fleet (DESIGN.md §16).
  std::string endpoints;  ///< submit/drain: comma-separated fleet list
  std::string peers;      ///< serve: full fleet list incl. this daemon
  std::string shard_id;   ///< serve: telemetry shard label
  unsigned vnodes = 0;    ///< ring virtual nodes (0 = default)
  bool stream = false;    ///< submit: request frame-per-chunk streaming
};

[[noreturn]] void die_flag(const std::string& error) {
  std::cerr << error << "\n";
  std::exit(2);
}

CliArgs parse(int argc, char** argv) {
  CliArgs args;
  std::string value;
  std::string error;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (flag_value(arg, "--scale", &value)) {
      const auto v = parse_positive_double(value, "--scale value", &error);
      if (!v) die_flag(error);
      args.params.scale = *v;
    } else if (flag_value(arg, "--seed", &value)) {
      const auto v = parse_u64(value, "--seed value", &error);
      if (!v) die_flag(error);
      args.params.seed = *v;
    } else if (flag_value(arg, "--threads", &value)) {
      const auto v = parse_thread_count(value, &error);
      if (!v) die_flag(error);
      args.threads = *v;
    } else if (flag_value(arg, "--metrics-out", &value)) {
      if (value.empty()) die_flag("--metrics-out needs a file path");
      args.metrics_out = value;
    } else if (flag_value(arg, "--trace-events", &value)) {
      if (value.empty()) die_flag("--trace-events needs a file path");
      args.trace_events = value;
    } else if (arg == "--progress") {
      args.progress = true;
    } else if (flag_value(arg, "--progress", &value)) {
      if (value != "force") {
        die_flag("invalid --progress value '" + value + "' (only 'force')");
      }
      args.progress = true;
      args.progress_force = true;
    } else if (arg == "--grid") {
      args.grid = true;
    } else if (arg == "--sample") {
      args.sample = true;
    } else if (flag_value(arg, "--sample", &value)) {
      const auto v = parse_u64(value, "--sample value", &error);
      if (!v) die_flag(error);
      args.sample = true;
      args.sample_clusters = value;
    } else if (flag_value(arg, "--sample-seed", &value)) {
      const auto v = parse_u64(value, "--sample-seed value", &error);
      if (!v) die_flag(error);
      args.sample_seed = value;
    } else if (flag_value(arg, "--max-error", &value)) {
      const auto v = parse_positive_double(value, "--max-error value", &error);
      if (!v) die_flag(error);
      args.max_error = value;
    } else if (arg == "--version") {
      args.version = true;
    } else if (flag_value(arg, "--socket", &value)) {
      if (value.empty()) die_flag("--socket needs a path");
      args.socket_path = value;
    } else if (flag_value(arg, "--host", &value)) {
      if (value.empty()) die_flag("--host needs an address");
      args.host = value;
    } else if (flag_value(arg, "--port", &value)) {
      const auto v = parse_u64(value, "--port value", &error);
      if (!v || *v > 65535) die_flag("invalid --port value '" + value + "'");
      args.port = static_cast<int>(*v);
    } else if (flag_value(arg, "--queue", &value)) {
      const auto v = parse_u64(value, "--queue value", &error);
      if (!v || *v == 0) die_flag("--queue needs a positive integer");
      args.queue_capacity = static_cast<std::size_t>(*v);
    } else if (flag_value(arg, "--result-cache", &value)) {
      const auto v = parse_u64(value, "--result-cache value", &error);
      if (!v || *v == 0) die_flag("--result-cache needs a positive integer");
      args.result_cache_entries = static_cast<std::size_t>(*v);
    } else if (flag_value(arg, "--meta-out", &value)) {
      if (value.empty()) die_flag("--meta-out needs a file path");
      args.meta_out = value;
    } else if (flag_value(arg, "--timeout-ms", &value)) {
      const auto v = parse_u64(value, "--timeout-ms value", &error);
      if (!v || *v == 0) die_flag("--timeout-ms needs a positive integer");
      args.timeout_ms = *v;
    } else if (flag_value(arg, "--retry", &value)) {
      const auto v = parse_u64(value, "--retry value", &error);
      if (!v || *v > 100) die_flag("--retry needs an integer 0..100");
      args.retry = static_cast<unsigned>(*v);
    } else if (flag_value(arg, "--cache-file", &value)) {
      if (value.empty()) die_flag("--cache-file needs a file path");
      args.cache_file = value;
    } else if (flag_value(arg, "--format", &value)) {
      if (value != "json" && value != "prometheus") {
        die_flag("invalid --format value '" + value +
                 "' (json or prometheus)");
      }
      args.format = value;
    } else if (arg == "--recent") {
      args.recent = true;
    } else if (flag_value(arg, "--recent", &value)) {
      const auto v = parse_u64(value, "--recent value", &error);
      if (!v || *v == 0) die_flag("--recent needs a positive integer");
      args.recent = true;
      args.recent_n = value;
    } else if (flag_value(arg, "--interval-ms", &value)) {
      const auto v = parse_u64(value, "--interval-ms value", &error);
      if (!v || *v == 0) die_flag("--interval-ms needs a positive integer");
      args.interval_ms = *v;
    } else if (flag_value(arg, "--count", &value)) {
      const auto v = parse_u64(value, "--count value", &error);
      if (!v) die_flag(error);
      args.top_count = *v;
    } else if (flag_value(arg, "--slow-log-ms", &value)) {
      const auto v = parse_u64(value, "--slow-log-ms value", &error);
      if (!v) die_flag(error);
      args.slow_log_ms = static_cast<long long>(*v);
    } else if (flag_value(arg, "--slow-log", &value)) {
      if (value.empty()) die_flag("--slow-log needs a file path");
      args.slow_log_path = value;
    } else if (flag_value(arg, "--endpoints", &value)) {
      if (value.empty()) die_flag("--endpoints needs a comma-separated list");
      args.endpoints = value;
    } else if (flag_value(arg, "--peers", &value)) {
      if (value.empty()) die_flag("--peers needs a comma-separated list");
      args.peers = value;
    } else if (flag_value(arg, "--shard-id", &value)) {
      if (value.empty()) die_flag("--shard-id needs a name");
      args.shard_id = value;
    } else if (flag_value(arg, "--vnodes", &value)) {
      const auto v = parse_u64(value, "--vnodes value", &error);
      if (!v || *v == 0 || *v > 65536) {
        die_flag("--vnodes needs an integer 1..65536");
      }
      args.vnodes = static_cast<unsigned>(*v);
    } else if (arg == "--stream") {
      args.stream = true;
    } else if (arg.rfind("--", 0) == 0) {
      die_flag("unknown option '" + arg + "'");
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

/// Request for the shared verb implementations: positional[0] is the verb,
/// the rest are its args.
svc::Request to_request(const CliArgs& args, std::size_t skip = 1) {
  svc::Request req;
  if (!args.positional.empty()) req.verb = args.positional[0];
  for (std::size_t i = skip; i < args.positional.size(); ++i) {
    req.args.push_back(args.positional[i]);
  }
  if (args.grid) {
    // --grid is request identity (it selects the grid-sweep evaluate path
    // server-side), so it travels in args rather than as a local option.
    if (req.verb != "evaluate") {
      die_flag("--grid is only supported by the evaluate verb");
    }
    req.args.emplace_back("--grid");
  }
  if (!args.sample && (!args.sample_seed.empty() || !args.max_error.empty())) {
    die_flag(std::string(!args.sample_seed.empty() ? "--sample-seed"
                                                   : "--max-error") +
             " requires --sample");
  }
  if (args.sample) {
    // Sampling params are request identity too (sampled estimates must
    // never be served from an exact run's cache entry, or vice versa).
    if (req.verb != "evaluate" && req.verb != "advise") {
      die_flag("--sample is only supported by the evaluate and advise verbs");
    }
    req.args.push_back(args.sample_clusters.empty()
                           ? std::string("--sample")
                           : "--sample=" + args.sample_clusters);
    if (!args.sample_seed.empty()) {
      req.args.push_back("--sample-seed=" + args.sample_seed);
    }
    if (!args.max_error.empty()) {
      req.args.push_back("--max-error=" + args.max_error);
    }
  }
  if (!args.format.empty()) {
    if (req.verb != "metrics") {
      die_flag("--format is only supported by the metrics verb");
    }
    req.args.push_back("--format=" + args.format);
  }
  if (args.recent) {
    if (req.verb != "status") {
      die_flag("--recent is only supported by the status verb");
    }
    req.args.push_back(args.recent_n.empty() ? std::string("--recent")
                                             : "--recent=" + args.recent_n);
  }
  req.params = args.params;
  req.threads = args.threads;
  req.timeout_ms = args.timeout_ms;
  return req;
}

int cmd_trace(const CliArgs& args) {
  if (args.positional.size() < 3) {
    print_verb_usage(std::cerr, "trace");
    return 1;
  }
  const Trace trace =
      svc::env_cached_workload_trace(args.positional[1], args.params);
  const std::string& path = args.positional[2];
  const bool compress =
      path.size() >= 5 && path.substr(path.size() - 5) == ".ctrc";
  if (compress) {
    save_trace_compressed(trace, path);
  } else {
    save_trace(trace, path);
  }
  std::cout << "wrote " << trace.size() << " refs to " << path
            << (compress ? " (compressed)" : "") << "\n";
  return 0;
}

svc::Endpoint endpoint_from(const CliArgs& args) {
  svc::Endpoint ep;
  ep.unix_path = args.socket_path;
  ep.host = args.host;
  ep.port = args.port;
  return ep;
}

/// Write the response's metadata fragment (everything except the payload
/// bytes) for machine consumption — CI asserts result-cache hits this way.
void write_meta(const svc::Response& resp, const std::string& path) {
  svc::Response meta = resp;
  meta.output.clear();
  std::ofstream os(path);
  CANU_CHECK_MSG(os.good(), "cannot write " << path);
  os << svc::encode_response(meta) << "\n";
}

int finish_remote(const svc::Response& resp, const CliArgs& args) {
  if (!args.meta_out.empty()) write_meta(resp, args.meta_out);
  if (resp.version != obs::kVersion) {
    std::cerr << "[canu] warning: daemon version " << resp.version
              << " != client " << obs::kVersion << "\n";
  }
  std::cout << resp.output;
  std::cerr << resp.error;
  return resp.exit_code;
}

svc::RetryPolicy retry_policy_from(const CliArgs& args) {
  svc::RetryPolicy policy;
  policy.attempts = args.retry + 1;
  policy.budget = std::chrono::milliseconds(args.timeout_ms);
  // Jitter seeded per process so concurrent clients desynchronize their
  // backoff; getpid ^ a monotonic tick is plenty for spreading sleeps.
  policy.seed = static_cast<std::uint64_t>(getpid()) ^
                static_cast<std::uint64_t>(
                    std::chrono::steady_clock::now().time_since_epoch()
                        .count());
  return policy;
}

int cmd_submit(const CliArgs& args) {
  if (args.positional.size() < 2) {
    print_verb_usage(std::cerr, "submit");
    return 1;
  }
  CliArgs remote = args;
  remote.positional.erase(remote.positional.begin());  // drop "submit"
  const svc::Request req = to_request(remote);
  const svc::RetryPolicy policy = retry_policy_from(args);
  // Chunk frames go straight to stdout; the response's output is then just
  // the unshipped tail, so finish_remote still completes the byte stream.
  const auto sink = [](std::string_view data) {
    std::cout << data << std::flush;
  };
  if (!args.endpoints.empty()) {
    fleet::FleetOptions fopt;
    if (args.vnodes != 0) fopt.vnodes = args.vnodes;
    fopt.retry = policy;
    const fleet::FleetClient fc(fleet::parse_endpoint_list(args.endpoints),
                                fopt);
    return finish_remote(
        args.stream ? fc.call_streamed(req, sink) : fc.call(req), args);
  }
  const svc::Client client(endpoint_from(args));
  return finish_remote(args.stream
                           ? client.call_streamed(req, sink, policy)
                           : client.call_with_retry(req, policy),
                       args);
}

// ---------------------------------------------------------------------------
// canu drain: shard handoff. Replay a (possibly dead) daemon's cache journal
// onto the fleet — each record is shipped as a `put` request, in the same
// checksummed CANUJRNL record encoding the journal uses on disk, to the
// shard owning the record's key on the ring (with ring-order failover).

int cmd_drain(const CliArgs& args) {
  if (args.positional.size() < 2) {
    print_verb_usage(std::cerr, "drain");
    return 1;
  }
  if (args.endpoints.empty()) {
    std::cerr << "canu drain needs --endpoints=<fleet list>\n";
    print_verb_usage(std::cerr, "drain");
    return 1;
  }
  fleet::FleetOptions fopt;
  if (args.vnodes != 0) fopt.vnodes = args.vnodes;
  fopt.retry = retry_policy_from(args);
  const fleet::FleetClient fc(fleet::parse_endpoint_list(args.endpoints),
                              fopt);

  svc::ResultJournal journal(args.positional[1]);
  const std::vector<svc::ResultJournal::Record> records = journal.load();
  if (journal.recovered_corrupt_tail()) {
    std::cerr << "[canu] warning: " << journal.path()
              << " had a corrupt tail; draining the valid prefix ("
              << records.size() << " records)\n";
  }

  static const char* kHex = "0123456789abcdef";
  struct ShardTally {
    std::uint64_t stored = 0;
    std::uint64_t duplicate = 0;
  };
  std::map<std::string, ShardTally> per_shard;
  std::uint64_t failed = 0;
  for (const svc::ResultJournal::Record& rec : records) {
    svc::Request req;
    req.verb = "put";
    const std::string bytes = svc::encode_record_bytes(rec.key, rec.result);
    req.body.reserve(bytes.size() * 2);
    for (const unsigned char c : bytes) {
      req.body.push_back(kHex[c >> 4]);
      req.body.push_back(kHex[c & 0xf]);
    }
    // Route by the RECORD's key (the key under which the entry will be
    // served), not by the put request's own canonical key — the owner must
    // be the shard future submits of the original request will hit.
    const std::vector<std::string> order =
        fc.ring().owners(rec.key, fc.ring().size());
    bool done = false;
    std::string last_error;
    for (const std::string& shard : order) {
      try {
        const svc::Client client(fc.endpoint_of(shard));
        const svc::Response resp = client.call(req);
        if (resp.exit_code != 0) {
          last_error = resp.error;
          break;  // a server-side rejection is an answer, not a dead shard
        }
        ShardTally& tally = per_shard[shard];
        if (resp.output.rfind("duplicate ", 0) == 0) {
          ++tally.duplicate;
        } else {
          ++tally.stored;
        }
        done = true;
        break;
      } catch (const Error& e) {
        last_error = e.what();  // shard down: advance along the ring
      }
    }
    if (!done) {
      ++failed;
      std::cerr << "[canu] drain: no shard accepted " << rec.key << ": "
                << last_error;
      if (last_error.empty() || last_error.back() != '\n') std::cerr << "\n";
    }
  }

  for (const auto& [shard, tally] : per_shard) {
    std::cout << shard << ": stored " << tally.stored << ", duplicate "
              << tally.duplicate << "\n";
  }
  std::cout << "drained " << (records.size() - failed) << "/"
            << records.size() << " records from " << journal.path() << "\n";
  return failed == 0 ? 0 : 1;
}

int cmd_status(const CliArgs& args) {
  const svc::Client client(endpoint_from(args));
  svc::Request req;
  req.verb = "status";
  if (args.recent) {
    req.args.push_back(args.recent_n.empty() ? std::string("--recent")
                                             : "--recent=" + args.recent_n);
  }
  return finish_remote(client.call(req), args);
}

int cmd_metrics(const CliArgs& args) {
  const svc::Client client(endpoint_from(args));
  svc::Request req;
  req.verb = "metrics";
  if (!args.format.empty()) req.args.push_back("--format=" + args.format);
  return finish_remote(client.call(req), args);
}

// ---------------------------------------------------------------------------
// canu top: poll the metrics verb and render a refreshing dashboard.

void render_top_frame(const obs::JsonValue& doc, std::ostream& os) {
  const auto num = [](const obs::JsonValue& v, const char* key) {
    const obs::JsonValue* m = v.find(key);
    return m != nullptr && m->is_number() ? m->as_number() : 0.0;
  };
  os << "canud " << doc.at("canud").as_string() << "  uptime "
     << std::fixed << std::setprecision(0) << num(doc, "uptime_s") << "s\n";
  const obs::JsonValue& totals = doc.at("totals");
  os << "requests " << std::setprecision(0) << num(totals, "requests")
     << "  warm_hits " << num(totals, "warm_hits") << "  misses "
     << num(totals, "misses") << "  rejections " << num(totals, "rejections")
     << "\n";
  const obs::JsonValue& gauges = doc.at("gauges");
  os << "in_flight " << num(gauges, "in_flight") << "/"
     << num(gauges, "capacity") << "  queue int/batch "
     << num(gauges, "queue_interactive") << "/" << num(gauges, "queue_batch")
     << "  cache " << num(gauges, "result_cache_entries") << " entries, "
     << num(gauges, "result_cache_bytes") << " bytes\n\n";

  TextTable windows;
  windows.set_header({"window", "rps", "hit_ratio", "reject_rate"});
  for (const char* key : {"10s", "60s", "300s"}) {
    const obs::JsonValue* win = doc.at("windows").find(key);
    if (win == nullptr) continue;
    windows.add_row({key, TextTable::num(num(*win, "rps"), 2),
                     TextTable::num(num(*win, "warm_hit_ratio"), 3),
                     TextTable::num(num(*win, "rejection_rate"), 3)});
  }
  windows.print(os);
  os << "\n";

  TextTable verbs;
  verbs.set_header(
      {"verb", "count", "errors", "p50_ms", "p99_ms", "mean_ms"});
  for (const auto& [verb, v] : doc.at("verbs").as_object()) {
    verbs.add_row({verb, TextTable::num(num(v, "count"), 0),
                   TextTable::num(num(v, "errors"), 0),
                   TextTable::num(num(v, "p50_ms"), 3),
                   TextTable::num(num(v, "p99_ms"), 3),
                   TextTable::num(num(v, "mean_ms"), 3)});
  }
  verbs.print(os);
}

int cmd_top(const CliArgs& args) {
  const svc::Client client(endpoint_from(args));
  const bool tty = isatty(STDOUT_FILENO) != 0;
  svc::Request req;
  req.verb = "metrics";
  for (std::uint64_t frame = 0;
       args.top_count == 0 || frame < args.top_count; ++frame) {
    if (frame > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(args.interval_ms));
    }
    const svc::Response resp = client.call(req);
    if (resp.exit_code != 0) {
      std::cerr << resp.error;
      return resp.exit_code;
    }
    std::ostringstream out;
    render_top_frame(obs::JsonValue::parse(resp.output), out);
    // Home + clear-to-end keeps a steady frame without flicker; when piped,
    // frames simply concatenate.
    if (tty) std::cout << "\x1b[H\x1b[J";
    std::cout << out.str() << std::flush;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// canu serve: signal-driven daemon lifecycle. The handlers only write one
// byte to a self-pipe (async-signal-safe); the main thread blocks on the
// pipe and runs the graceful drain ('s') or a metrics rollup ('h').

int g_signal_pipe[2] = {-1, -1};

extern "C" void handle_stop_signal(int) {
  const char byte = 's';
  // Best-effort: a full pipe already guarantees wake-up.
  [[maybe_unused]] const auto n = write(g_signal_pipe[1], &byte, 1);
}

extern "C" void handle_hup_signal(int) {
  const char byte = 'h';
  [[maybe_unused]] const auto n = write(g_signal_pipe[1], &byte, 1);
}

void serve_rollup(const svc::Server& server, const std::string& path) {
  if (path.empty()) return;
  try {
    server.write_rollup(path);
    std::cerr << "[canud] wrote metrics rollup to " << path << "\n";
  } catch (const Error& e) {
    std::cerr << "[canud] warning: metrics rollup failed: " << e.what()
              << "\n";
  }
}

int cmd_serve(const CliArgs& args) {
  svc::ServerOptions opt;
  opt.unix_socket = args.socket_path;
  opt.tcp_port = args.port;
  opt.tcp_host = args.host;
  opt.threads = args.threads;
  opt.queue_capacity = args.queue_capacity;
  opt.result_cache_entries = args.result_cache_entries;
  opt.cache_file = args.cache_file;
  opt.slow_log_ms = args.slow_log_ms;
  opt.slow_log_path = args.slow_log_path;
  opt.shard_id = args.shard_id;
  if (opt.unix_socket.empty() && opt.tcp_port < 0) {
    std::cerr << "canu serve needs --socket=<path> and/or --port=<n>\n";
    print_verb_usage(std::cerr, "serve");
    return 1;
  }
  if (!args.peers.empty()) {
    // Fleet mode: find this daemon's own canonical name in the peer list
    // (that membership is what makes the ring agree everywhere), then
    // install the route-owner hook so misrouted requests forward.
    const std::vector<svc::Endpoint> peers =
        fleet::parse_endpoint_list(args.peers);
    std::vector<std::string> candidates;
    if (!args.socket_path.empty()) {
      svc::Endpoint self;
      self.unix_path = args.socket_path;
      candidates.push_back(fleet::endpoint_name(self));
    }
    if (args.port > 0) {
      svc::Endpoint self;
      self.host = args.host;
      self.port = args.port;
      candidates.push_back(fleet::endpoint_name(self));
    }
    std::string self_name;
    for (const svc::Endpoint& ep : peers) {
      const std::string name = fleet::endpoint_name(ep);
      for (const std::string& candidate : candidates) {
        if (name == candidate) self_name = name;
      }
    }
    if (self_name.empty()) {
      std::cerr << "canu serve --peers must include this daemon's own "
                   "listening address (";
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        std::cerr << (i > 0 ? " or " : "") << candidates[i];
      }
      std::cerr << "); TCP fleet members need a concrete --port, not an "
                   "ephemeral one\n";
      return 1;
    }
    opt.route_owner = fleet::make_router(
        peers, self_name,
        args.vnodes != 0 ? args.vnodes : fleet::HashRing::kDefaultVnodes);
  }

  CANU_CHECK_MSG(pipe(g_signal_pipe) == 0, "pipe() failed");
  struct sigaction sa{};
  sa.sa_handler = handle_stop_signal;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  struct sigaction hup{};
  hup.sa_handler = handle_hup_signal;
  sigaction(SIGHUP, &hup, nullptr);
  signal(SIGPIPE, SIG_IGN);

  svc::Server server(std::move(opt));
  server.start();
  std::cerr << "[canud] " << obs::kVersion << " listening on "
            << server.endpoints() << " (threads=" << server.threads()
            << ", queue=" << args.queue_capacity
            << (args.shard_id.empty() ? "" : ", shard=" + args.shard_id)
            << ")\n";

  for (;;) {
    char byte = 0;
    const auto n = read(g_signal_pipe[0], &byte, 1);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0 || byte != 'h') break;  // SIGINT/SIGTERM (or pipe gone)
    serve_rollup(server, args.metrics_out);  // SIGHUP: rollup, keep serving
  }
  std::cerr << "[canud] draining...\n";
  server.stop();
  const svc::ServerCounters c = server.counters();
  std::cerr << "[canud] drained: " << c.admitted << " admitted, "
            << c.rejected << " rejected, " << c.result_cache_hits
            << " cache hits, " << c.coalesced << " coalesced\n";
  serve_rollup(server, args.metrics_out);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args = parse(argc, argv);
  if (args.version) {
    std::cout << "canu " << canu::obs::kVersion << "\n";
    return 0;
  }
  if (args.positional.empty()) {
    print_canu_usage(std::cout);
    return 0;
  }
  {
    const std::string& cmd = args.positional[0];
    if (args.stream && cmd != "submit") {
      die_flag("--stream is only supported by the submit verb");
    }
    if (!args.endpoints.empty() && cmd != "submit" && cmd != "drain") {
      die_flag("--endpoints is only supported by the submit and drain verbs");
    }
    if ((!args.peers.empty() || !args.shard_id.empty()) && cmd != "serve") {
      die_flag("--peers and --shard-id are only supported by the serve verb");
    }
    if (args.vnodes != 0 && cmd != "serve" && cmd != "submit" &&
        cmd != "drain") {
      die_flag("--vnodes is only supported by the serve, submit and drain "
               "verbs");
    }
  }

  std::string command;
  for (int i = 0; i < argc; ++i) {
    if (i > 0) command += ' ';
    command += argv[i];
  }
  // For `serve`, --metrics-out is the daemon's whole-process rollup (written
  // by cmd_serve on SIGHUP and shutdown), not the per-run obs manifest —
  // finalize_outputs() must not clobber it at exit.
  const bool serving =
      !args.positional.empty() && args.positional[0] == "serve";
  try {
    obs::install_outputs(obs::OutputConfig{
        serving ? std::string() : args.metrics_out, args.trace_events,
        command});
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }

  int rc = 1;
  try {
    const std::string& cmd = args.positional[0];
    if (cmd == "trace") {
      rc = cmd_trace(args);
    } else if (cmd == "serve") {
      rc = cmd_serve(args);
    } else if (cmd == "submit") {
      rc = cmd_submit(args);
    } else if (cmd == "status") {
      rc = cmd_status(args);
    } else if (cmd == "metrics") {
      rc = cmd_metrics(args);
    } else if (cmd == "top") {
      rc = cmd_top(args);
    } else if (cmd == "drain") {
      rc = cmd_drain(args);
    } else if (svc::verb_is_servable(cmd)) {
      svc::VerbOptions options;
      options.progress = args.progress;
      options.progress_force = args.progress_force;
      rc = svc::run_verb(to_request(args), std::cout, std::cerr, options);
    } else {
      std::cerr << "unknown command '" << cmd << "'\n\n";
      print_canu_usage(std::cerr);
    }
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
  }

  // Write the requested artifacts even after a failed command — a partial
  // manifest still says what ran and how far it got.
  try {
    obs::finalize_outputs();
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    if (rc == 0) rc = 1;
  }
  return rc;
}
