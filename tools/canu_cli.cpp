// canu — unified command-line driver for the CANU framework.
//
//   canu list                         workloads and schemes
//   canu run <workload> <scheme>      one simulation, full statistics
//   canu evaluate <suite> [group]     comparison table over a suite
//   canu advise <workload>            per-application scheme selection
//   canu trace <workload> <file>      record a trace (".ctrc" = compressed)
//   canu threec <workload> [scheme]   3C miss decomposition
//
// Every subcommand accepts a trailing --scale=<f> to resize workloads,
// --seed=<n> to vary inputs, and --threads=<n> to set the worker-thread
// count (CANU_THREADS is the env fallback; 1 selects the serial engine
// exactly). Observability flags: --metrics-out=<file> writes a run manifest
// (JSON: config, version, per-workload timings, aggregated metrics),
// --trace-events=<file> writes Chrome/Perfetto trace-event spans, and
// --progress prints a heartbeat to stderr during `evaluate` (TTY only;
// --progress=force overrides).
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/advisor.hpp"
#include "core/evaluator.hpp"
#include "obs/obs.hpp"
#include "sim/parallel_batch_runner.hpp"
#include "stats/three_c.hpp"
#include "trace/trace_cache.hpp"
#include "trace/trace_io.hpp"
#include "util/cli_flags.hpp"
#include "util/error.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace canu;

struct CliArgs {
  std::vector<std::string> positional;
  WorkloadParams params;
  unsigned threads = 0;  ///< 0 = CANU_THREADS env var, else hardware
  std::string metrics_out;   ///< run-manifest path (empty = off)
  std::string trace_events;  ///< trace-event path (empty = off)
  bool progress = false;
  bool progress_force = false;  ///< heartbeat even when stderr is no TTY
};

/// Workload trace through the environment-selected trace cache (identical
/// stream to plain generation; CANU_TRACE_CACHE=0 opts out).
Trace cli_trace(const std::string& name, const WorkloadParams& params) {
  const std::string dir = default_trace_cache_dir();
  if (dir.empty()) return generate_workload(name, params);
  const TraceCache cache(dir);
  return cached_workload_trace(name, params, &cache);
}

[[noreturn]] void die_flag(const std::string& error) {
  std::cerr << error << "\n";
  std::exit(2);
}

CliArgs parse(int argc, char** argv) {
  CliArgs args;
  std::string value;
  std::string error;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (flag_value(arg, "--scale", &value)) {
      const auto v = parse_positive_double(value, "--scale value", &error);
      if (!v) die_flag(error);
      args.params.scale = *v;
    } else if (flag_value(arg, "--seed", &value)) {
      const auto v = parse_u64(value, "--seed value", &error);
      if (!v) die_flag(error);
      args.params.seed = *v;
    } else if (flag_value(arg, "--threads", &value)) {
      const auto v = parse_thread_count(value, &error);
      if (!v) die_flag(error);
      args.threads = *v;
    } else if (flag_value(arg, "--metrics-out", &value)) {
      if (value.empty()) die_flag("--metrics-out needs a file path");
      args.metrics_out = value;
    } else if (flag_value(arg, "--trace-events", &value)) {
      if (value.empty()) die_flag("--trace-events needs a file path");
      args.trace_events = value;
    } else if (arg == "--progress") {
      args.progress = true;
    } else if (flag_value(arg, "--progress", &value)) {
      if (value != "force") {
        die_flag("invalid --progress value '" + value + "' (only 'force')");
      }
      args.progress = true;
      args.progress_force = true;
    } else if (arg.rfind("--", 0) == 0) {
      die_flag("unknown option '" + arg + "'");
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

SchemeSpec scheme_from_name(const std::string& name) {
  if (name == "column_assoc") return SchemeSpec::column_associative();
  if (name == "adaptive") return SchemeSpec::adaptive_cache();
  if (name == "b_cache") return SchemeSpec::b_cache();
  if (name == "victim") return SchemeSpec::victim_cache();
  if (name == "partner") return SchemeSpec::partner_cache();
  if (name == "skewed") return SchemeSpec::skewed_assoc(2);
  if (name == "2way") return SchemeSpec::set_assoc(2);
  if (name == "4way") return SchemeSpec::set_assoc(4);
  if (name == "8way") return SchemeSpec::set_assoc(8);
  return SchemeSpec::indexing(parse_index_scheme(name));  // throws if unknown
}

const char* kSchemeNames =
    "modulo xor odd_multiplier prime_modulo givargis givargis_xor "
    "patel_optimal column_assoc adaptive b_cache victim partner skewed "
    "2way 4way 8way";

int cmd_list() {
  std::cout << "workloads:\n";
  TextTable table;
  table.set_header({"name", "suite", "description"});
  for (const WorkloadInfo& w : all_workloads()) {
    table.add_row({w.name, w.suite, w.description});
  }
  table.print(std::cout);
  std::cout << "\nschemes: " << kSchemeNames << "\n";
  return 0;
}

int cmd_run(const CliArgs& args) {
  if (args.positional.size() < 3) {
    std::cerr << "usage: canu run <workload> <scheme>\n";
    return 1;
  }
  const Trace trace = cli_trace(args.positional[1], args.params);
  const SchemeSpec spec = scheme_from_name(args.positional[2]);
  auto model = build_l1_model(spec, CacheGeometry::paper_l1(), &trace);
  // --threads 1 (or CANU_THREADS=1) takes the exact serial run_trace path;
  // more threads replay through the parallel batch engine, which is
  // bit-for-bit identical per pipeline.
  const unsigned threads = resolve_thread_count(args.threads);
  RunResult r;
  if (threads > 1) {
    ThreadPool pool(threads);
    ParallelBatchRunner runner(RunConfig(), &pool);
    runner.add(*model);
    SpanSource source(trace.name(), trace.refs());
    r = run_batch(runner, source).front();
  } else {
    r = run_trace(*model, trace);
  }

  std::cout << args.positional[1] << " under " << spec.label() << " ("
            << trace.size() << " refs)\n";
  TextTable table;
  table.set_header({"metric", "value"});
  table.add_row({"miss rate %", TextTable::num(100.0 * r.miss_rate(), 4)});
  table.add_row({"AMAT (cycles)", TextTable::num(r.amat, 3)});
  table.add_row({"measured AMAT", TextTable::num(r.measured_amat, 3)});
  table.add_row({"L1 misses", std::to_string(r.l1.misses)});
  table.add_row({"L2 miss rate %", TextTable::num(100.0 * r.l2.miss_rate(), 3)});
  table.add_row({"alternate hits", std::to_string(r.l1.secondary_hits)});
  table.add_row({"FMS sets", std::to_string(r.uniformity.fms)});
  table.add_row({"LAS sets", std::to_string(r.uniformity.las)});
  table.add_row({"miss skewness",
                 TextTable::num(r.uniformity.miss_moments.skewness, 2)});
  table.add_row({"miss kurtosis",
                 TextTable::num(r.uniformity.miss_moments.kurtosis, 2)});
  table.print(std::cout);
  return 0;
}

int cmd_evaluate(const CliArgs& args) {
  if (args.positional.size() < 2) {
    std::cerr << "usage: canu evaluate <mibench|spec2006|synthetic|workload> "
                 "[indexing|assoc|all] [--threads=N]\n";
    return 1;
  }
  const std::string what = args.positional[1];
  std::vector<std::string> workloads = workload_names(what);
  if (workloads.empty()) {
    if (!find_workload(what)) {
      std::cerr << "unknown suite or workload '" << what << "'\n";
      return 1;
    }
    workloads = {what};
  }
  const std::string group =
      args.positional.size() > 2 ? args.positional[2] : "all";

  EvalOptions opt;
  opt.params = args.params;
  opt.threads = args.threads;
  opt.trace_cache_dir = default_trace_cache_dir();
  if (args.progress) {
    opt.progress = obs::make_progress_printer(args.progress_force);
  }
  Evaluator ev(opt);
  if (group == "indexing" || group == "all") ev.add_paper_indexing_schemes();
  if (group == "assoc" || group == "all") ev.add_paper_assoc_schemes();
  if (group == "extensions") {
    ev.add_scheme(SchemeSpec::partner_cache());
    ev.add_scheme(SchemeSpec::skewed_assoc(2));
    ev.add_scheme(SchemeSpec::victim_cache());
  }
  if (ev.schemes().empty()) {
    std::cerr << "unknown scheme group '" << group
              << "' (indexing|assoc|extensions|all)\n";
    return 1;
  }
  const EvalReport rep = ev.evaluate(workloads);
  rep.print_miss_reduction(std::cout);
  std::cout << "\n";
  rep.print_amat_reduction(std::cout);
  return 0;
}

int cmd_advise(const CliArgs& args) {
  if (args.positional.size() < 2) {
    std::cerr << "usage: canu advise <workload>\n";
    return 1;
  }
  Advisor::Options aopt;
  aopt.threads = args.threads;
  const AdvisorReport rep =
      Advisor(aopt).advise_workload(args.positional[1], args.params);
  TextTable table;
  table.set_header({"rank", "scheme", "miss rate %", "miss red. %"});
  int rank = 1;
  for (const AdvisorChoice& c : rep.ranked) {
    table.add_row({std::to_string(rank++), c.scheme.label(),
                   TextTable::num(100.0 * c.result.miss_rate(), 3),
                   TextTable::num(c.miss_reduction_pct, 2)});
  }
  table.print(std::cout);
  std::cout << (rep.keep_conventional()
                    ? "recommendation: keep conventional indexing\n"
                    : "recommendation: " + rep.best().scheme.label() + "\n");
  return 0;
}

int cmd_trace(const CliArgs& args) {
  if (args.positional.size() < 3) {
    std::cerr << "usage: canu trace <workload> <file> "
                 "(.ctrc extension = compressed)\n";
    return 1;
  }
  const Trace trace = cli_trace(args.positional[1], args.params);
  const std::string& path = args.positional[2];
  const bool compress =
      path.size() >= 5 && path.substr(path.size() - 5) == ".ctrc";
  if (compress) {
    save_trace_compressed(trace, path);
  } else {
    save_trace(trace, path);
  }
  std::cout << "wrote " << trace.size() << " refs to " << path
            << (compress ? " (compressed)" : "") << "\n";
  return 0;
}

int cmd_threec(const CliArgs& args) {
  if (args.positional.size() < 2) {
    std::cerr << "usage: canu threec <workload> [scheme]\n";
    return 1;
  }
  const Trace trace = cli_trace(args.positional[1], args.params);
  const SchemeSpec spec = args.positional.size() > 2
                              ? scheme_from_name(args.positional[2])
                              : SchemeSpec::baseline();
  auto model = build_l1_model(spec, CacheGeometry::paper_l1(), &trace);
  const unsigned threads = resolve_thread_count(args.threads);
  std::optional<ThreadPool> pool;
  if (threads > 1) pool.emplace(threads);
  const ThreeCReport r =
      classify_misses_paper_l1(*model, trace, pool ? &*pool : nullptr);
  std::cout << args.positional[1] << " under " << spec.label() << ":\n"
            << "  accesses    " << r.accesses << "\n"
            << "  misses      " << r.total_misses << " ("
            << TextTable::num(100.0 * r.miss_rate(), 3) << "%)\n"
            << "  compulsory  " << r.compulsory << "\n"
            << "  capacity    " << r.capacity << "\n"
            << "  conflict    " << r.conflict << " ("
            << TextTable::num(100.0 * r.conflict_fraction(), 1)
            << "% of misses)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args = parse(argc, argv);
  if (args.positional.empty()) {
    std::cout << "usage: canu <list|run|evaluate|advise|trace|threec> ...\n";
    return 0;
  }

  std::string command;
  for (int i = 0; i < argc; ++i) {
    if (i > 0) command += ' ';
    command += argv[i];
  }
  try {
    obs::install_outputs(
        obs::OutputConfig{args.metrics_out, args.trace_events, command});
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }

  int rc = 1;
  try {
    const std::string& cmd = args.positional[0];
    if (cmd == "list") {
      rc = cmd_list();
    } else if (cmd == "run") {
      rc = cmd_run(args);
    } else if (cmd == "evaluate") {
      rc = cmd_evaluate(args);
    } else if (cmd == "advise") {
      rc = cmd_advise(args);
    } else if (cmd == "trace") {
      rc = cmd_trace(args);
    } else if (cmd == "threec") {
      rc = cmd_threec(args);
    } else {
      std::cerr << "unknown command '" << cmd << "'\n";
    }
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
  }

  // Write the requested artifacts even after a failed command — a partial
  // manifest still says what ran and how far it got.
  try {
    obs::finalize_outputs();
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    if (rc == 0) rc = 1;
  }
  return rc;
}
