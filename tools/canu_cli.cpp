// canu — unified command-line driver for the CANU framework.
//
//   canu list                         workloads and schemes
//   canu run <workload> <scheme>      one simulation, full statistics
//   canu evaluate <suite> [group]     comparison table over a suite
//   canu advise <workload>            per-application scheme selection
//   canu trace <workload> <file>      record a trace (".ctrc" = compressed)
//   canu threec <workload> [scheme]   3C miss decomposition
//
// Every subcommand accepts a trailing --scale=<f> to resize workloads and
// --seed=<n> to vary inputs; `evaluate` also accepts --threads=<n> to set
// the worker-thread count (CANU_THREADS is the env fallback; 1 selects the
// serial engine exactly).
#include <iostream>
#include <string>
#include <vector>

#include "core/advisor.hpp"
#include "core/evaluator.hpp"
#include "stats/three_c.hpp"
#include "trace/trace_cache.hpp"
#include "trace/trace_io.hpp"
#include "util/error.hpp"
#include "util/table.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace canu;

struct CliArgs {
  std::vector<std::string> positional;
  WorkloadParams params;
  unsigned threads = 0;  ///< 0 = CANU_THREADS env var, else hardware
};

/// Workload trace through the environment-selected trace cache (identical
/// stream to plain generation; CANU_TRACE_CACHE=0 opts out).
Trace cli_trace(const std::string& name, const WorkloadParams& params) {
  const std::string dir = default_trace_cache_dir();
  if (dir.empty()) return generate_workload(name, params);
  const TraceCache cache(dir);
  return cached_workload_trace(name, params, &cache);
}

CliArgs parse(int argc, char** argv) {
  CliArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) {
      char* end = nullptr;
      args.params.scale = std::strtod(arg.c_str() + 8, &end);
      if (end == arg.c_str() + 8 || *end != '\0' ||
          !(args.params.scale > 0)) {
        std::cerr << "invalid --scale value '" << arg.substr(8)
                  << "' (want a number > 0)\n";
        std::exit(2);
      }
    } else if (arg.rfind("--seed=", 0) == 0) {
      char* end = nullptr;
      args.params.seed = std::strtoull(arg.c_str() + 7, &end, 10);
      if (end == arg.c_str() + 7 || *end != '\0') {
        std::cerr << "invalid --seed value '" << arg.substr(7)
                  << "' (want an unsigned integer)\n";
        std::exit(2);
      }
    } else if (arg.rfind("--threads=", 0) == 0) {
      char* end = nullptr;
      const unsigned long n = std::strtoul(arg.c_str() + 10, &end, 10);
      if (end == arg.c_str() + 10 || *end != '\0' || n == 0 || n >= 4096) {
        std::cerr << "invalid --threads value '" << arg.substr(10)
                  << "' (want an integer in [1, 4095])\n";
        std::exit(2);
      }
      args.threads = static_cast<unsigned>(n);
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

SchemeSpec scheme_from_name(const std::string& name) {
  if (name == "column_assoc") return SchemeSpec::column_associative();
  if (name == "adaptive") return SchemeSpec::adaptive_cache();
  if (name == "b_cache") return SchemeSpec::b_cache();
  if (name == "victim") return SchemeSpec::victim_cache();
  if (name == "partner") return SchemeSpec::partner_cache();
  if (name == "skewed") return SchemeSpec::skewed_assoc(2);
  if (name == "2way") return SchemeSpec::set_assoc(2);
  if (name == "4way") return SchemeSpec::set_assoc(4);
  if (name == "8way") return SchemeSpec::set_assoc(8);
  return SchemeSpec::indexing(parse_index_scheme(name));  // throws if unknown
}

const char* kSchemeNames =
    "modulo xor odd_multiplier prime_modulo givargis givargis_xor "
    "patel_optimal column_assoc adaptive b_cache victim partner skewed "
    "2way 4way 8way";

int cmd_list() {
  std::cout << "workloads:\n";
  TextTable table;
  table.set_header({"name", "suite", "description"});
  for (const WorkloadInfo& w : all_workloads()) {
    table.add_row({w.name, w.suite, w.description});
  }
  table.print(std::cout);
  std::cout << "\nschemes: " << kSchemeNames << "\n";
  return 0;
}

int cmd_run(const CliArgs& args) {
  if (args.positional.size() < 3) {
    std::cerr << "usage: canu run <workload> <scheme>\n";
    return 1;
  }
  const Trace trace = cli_trace(args.positional[1], args.params);
  const SchemeSpec spec = scheme_from_name(args.positional[2]);
  auto model = build_l1_model(spec, CacheGeometry::paper_l1(), &trace);
  const RunResult r = run_trace(*model, trace);

  std::cout << args.positional[1] << " under " << spec.label() << " ("
            << trace.size() << " refs)\n";
  TextTable table;
  table.set_header({"metric", "value"});
  table.add_row({"miss rate %", TextTable::num(100.0 * r.miss_rate(), 4)});
  table.add_row({"AMAT (cycles)", TextTable::num(r.amat, 3)});
  table.add_row({"measured AMAT", TextTable::num(r.measured_amat, 3)});
  table.add_row({"L1 misses", std::to_string(r.l1.misses)});
  table.add_row({"L2 miss rate %", TextTable::num(100.0 * r.l2.miss_rate(), 3)});
  table.add_row({"alternate hits", std::to_string(r.l1.secondary_hits)});
  table.add_row({"FMS sets", std::to_string(r.uniformity.fms)});
  table.add_row({"LAS sets", std::to_string(r.uniformity.las)});
  table.add_row({"miss skewness",
                 TextTable::num(r.uniformity.miss_moments.skewness, 2)});
  table.add_row({"miss kurtosis",
                 TextTable::num(r.uniformity.miss_moments.kurtosis, 2)});
  table.print(std::cout);
  return 0;
}

int cmd_evaluate(const CliArgs& args) {
  if (args.positional.size() < 2) {
    std::cerr << "usage: canu evaluate <mibench|spec2006|synthetic|workload> "
                 "[indexing|assoc|all] [--threads=N]\n";
    return 1;
  }
  const std::string what = args.positional[1];
  std::vector<std::string> workloads = workload_names(what);
  if (workloads.empty()) {
    if (!find_workload(what)) {
      std::cerr << "unknown suite or workload '" << what << "'\n";
      return 1;
    }
    workloads = {what};
  }
  const std::string group =
      args.positional.size() > 2 ? args.positional[2] : "all";

  EvalOptions opt;
  opt.params = args.params;
  opt.threads = args.threads;
  opt.trace_cache_dir = default_trace_cache_dir();
  Evaluator ev(opt);
  if (group == "indexing" || group == "all") ev.add_paper_indexing_schemes();
  if (group == "assoc" || group == "all") ev.add_paper_assoc_schemes();
  if (group == "extensions") {
    ev.add_scheme(SchemeSpec::partner_cache());
    ev.add_scheme(SchemeSpec::skewed_assoc(2));
    ev.add_scheme(SchemeSpec::victim_cache());
  }
  if (ev.schemes().empty()) {
    std::cerr << "unknown scheme group '" << group
              << "' (indexing|assoc|extensions|all)\n";
    return 1;
  }
  const EvalReport rep = ev.evaluate(workloads);
  rep.print_miss_reduction(std::cout);
  std::cout << "\n";
  rep.print_amat_reduction(std::cout);
  return 0;
}

int cmd_advise(const CliArgs& args) {
  if (args.positional.size() < 2) {
    std::cerr << "usage: canu advise <workload>\n";
    return 1;
  }
  const AdvisorReport rep =
      Advisor().advise_workload(args.positional[1], args.params);
  TextTable table;
  table.set_header({"rank", "scheme", "miss rate %", "miss red. %"});
  int rank = 1;
  for (const AdvisorChoice& c : rep.ranked) {
    table.add_row({std::to_string(rank++), c.scheme.label(),
                   TextTable::num(100.0 * c.result.miss_rate(), 3),
                   TextTable::num(c.miss_reduction_pct, 2)});
  }
  table.print(std::cout);
  std::cout << (rep.keep_conventional()
                    ? "recommendation: keep conventional indexing\n"
                    : "recommendation: " + rep.best().scheme.label() + "\n");
  return 0;
}

int cmd_trace(const CliArgs& args) {
  if (args.positional.size() < 3) {
    std::cerr << "usage: canu trace <workload> <file> "
                 "(.ctrc extension = compressed)\n";
    return 1;
  }
  const Trace trace = cli_trace(args.positional[1], args.params);
  const std::string& path = args.positional[2];
  const bool compress =
      path.size() >= 5 && path.substr(path.size() - 5) == ".ctrc";
  if (compress) {
    save_trace_compressed(trace, path);
  } else {
    save_trace(trace, path);
  }
  std::cout << "wrote " << trace.size() << " refs to " << path
            << (compress ? " (compressed)" : "") << "\n";
  return 0;
}

int cmd_threec(const CliArgs& args) {
  if (args.positional.size() < 2) {
    std::cerr << "usage: canu threec <workload> [scheme]\n";
    return 1;
  }
  const Trace trace = cli_trace(args.positional[1], args.params);
  const SchemeSpec spec = args.positional.size() > 2
                              ? scheme_from_name(args.positional[2])
                              : SchemeSpec::baseline();
  auto model = build_l1_model(spec, CacheGeometry::paper_l1(), &trace);
  const ThreeCReport r = classify_misses_paper_l1(*model, trace);
  std::cout << args.positional[1] << " under " << spec.label() << ":\n"
            << "  accesses    " << r.accesses << "\n"
            << "  misses      " << r.total_misses << " ("
            << TextTable::num(100.0 * r.miss_rate(), 3) << "%)\n"
            << "  compulsory  " << r.compulsory << "\n"
            << "  capacity    " << r.capacity << "\n"
            << "  conflict    " << r.conflict << " ("
            << TextTable::num(100.0 * r.conflict_fraction(), 1)
            << "% of misses)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args = parse(argc, argv);
  if (args.positional.empty()) {
    std::cout << "usage: canu <list|run|evaluate|advise|trace|threec> ...\n";
    return 0;
  }
  try {
    const std::string& cmd = args.positional[0];
    if (cmd == "list") return cmd_list();
    if (cmd == "run") return cmd_run(args);
    if (cmd == "evaluate") return cmd_evaluate(args);
    if (cmd == "advise") return cmd_advise(args);
    if (cmd == "trace") return cmd_trace(args);
    if (cmd == "threec") return cmd_threec(args);
    std::cerr << "unknown command '" << cmd << "'\n";
    return 1;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
