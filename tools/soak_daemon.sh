#!/usr/bin/env bash
# Mixed-priority soak against a live canud: batch evaluates, interactive
# control-plane requests, and deliberately timed-out submits all hammer one
# daemon for a fixed window. Asserts that
#   - every client invocation returns (no hung requests: each is wrapped in
#     a hard `timeout` well above any legitimate latency),
#   - interactive requests stay fast even while batch work queues
#     (p99 bound read from the shutdown rollup),
#   - deadlines produce typed exit-124 answers, not stuck clients,
#   - SIGHUP produces a parseable metrics rollup mid-flight,
#   - the daemon drains cleanly on SIGTERM and writes the final rollup.
#
# Fleet mode (--shards=N, DESIGN.md §16): N daemons with --shard-id/--peers
# form a consistent-hash fleet; the same mixed load runs through
# `submit --endpoints` (client-side ring routing), misrouted submits exercise
# the server-side route forward, and mid-soak one shard is SIGKILLed, its
# journal drained onto the survivors (`canu drain`, asserted lossless), its
# replies verified byte-identical to the direct CLI, and the shard restarted.
#
# Usage: tools/soak_daemon.sh [build-dir] [duration-seconds] [--shards=N]
set -euo pipefail

SHARDS=1
POSITIONAL=()
for arg in "$@"; do
  case "$arg" in
    --shards=*) SHARDS=${arg#--shards=} ;;
    *) POSITIONAL+=("$arg") ;;
  esac
done
BUILD_DIR=${POSITIONAL[0]:-build}
DURATION=${POSITIONAL[1]:-60}
CANU="$BUILD_DIR/tools/canu"
[ -x "$CANU" ] || { echo "no canu binary at $CANU" >&2; exit 2; }

WORK=$(mktemp -d /tmp/canu_soak_XXXXXX)
SOCK="$WORK/canud.sock"
ROLLUP="$WORK/rollup.json"
SERVE_PID=
SHARD_PIDS=()
cleanup() {
  [ -n "$SERVE_PID" ] && kill -KILL "$SERVE_PID" 2> /dev/null || true
  for pid in ${SHARD_PIDS[@]+"${SHARD_PIDS[@]}"}; do
    kill -KILL "$pid" 2> /dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "soak: $*" >&2; touch "$WORK/failed"; }

# ---------------------------------------------------------------------------
# Fleet soak (--shards=N)

start_shard() {  # start_shard <index>
  local i=$1
  "$CANU" serve --socket="$WORK/s$i.sock" --shard-id="s$i" --peers="$EPS" \
    --queue=16 --cache-file="$WORK/s$i.jrnl" \
    2>> "$WORK/s$i.serve.log" &
  SHARD_PIDS[$i]=$!
  for _ in $(seq 1 100); do [ -S "$WORK/s$i.sock" ] && break; sleep 0.1; done
  [ -S "$WORK/s$i.sock" ] || { echo "shard $i never bound" >&2; exit 1; }
}

fleet_soak() {
  EPS=""
  for i in $(seq 0 $((SHARDS - 1))); do
    EPS="$EPS${EPS:+,}$WORK/s$i.sock"
  done
  for i in $(seq 0 $((SHARDS - 1))); do start_shard "$i"; done

  # Warm a fixed request set through the ring and keep the direct-CLI
  # expected bytes: the kill/drain/restart sequence must never change them.
  local k
  for k in $(seq 1 6); do
    "$CANU" run crc modulo --seed="$k" --scale=0.0625 \
      > "$WORK/expect.$k" 2> /dev/null
    $CLIENT "$CANU" submit run crc modulo --seed="$k" --scale=0.0625 \
      --endpoints="$EPS" --retry=5 > /dev/null \
      || fail "warm submit seed=$k failed"
  done

  fleet_batch_loop() {
    local i=0 rc
    while [ $SECONDS -lt $END ]; do
      rc=0
      $CLIENT "$CANU" submit evaluate crc indexing --scale=0.0625 \
        --seed=$(((i % 4) + 1)) --retry=5 --endpoints="$EPS" \
        > /dev/null 2>> "$WORK/batch.err" || rc=$?
      case $rc in
        0 | 75) ;;
        *) fail "fleet batch submit exited $rc" ;;
      esac
      i=$((i + 1))
    done
    echo "$i" > "$WORK/batch.count"
  }

  fleet_stream_loop() {
    # Streamed grid submits: chunks + tail must assemble byte-identically.
    local i=0 rc
    "$CANU" evaluate sha --grid "sets=512,1024" --scale=0.0625 \
      > "$WORK/grid.expect" 2> /dev/null
    while [ $SECONDS -lt $END ]; do
      rc=0
      $CLIENT "$CANU" submit evaluate sha --grid "sets=512,1024" \
        --scale=0.0625 --stream --retry=5 --endpoints="$EPS" \
        > "$WORK/grid.got" 2>> "$WORK/stream.err" || rc=$?
      case $rc in
        0) cmp -s "$WORK/grid.expect" "$WORK/grid.got" \
             || fail "streamed grid reply diverged from direct CLI" ;;
        75) ;;
        *) fail "fleet stream submit exited $rc" ;;
      esac
      i=$((i + 1))
      sleep 0.1
    done
    echo "$i" > "$WORK/stream.count"
  }

  fleet_misroute_loop() {
    # Hit shard 0 directly with keys it mostly does not own: the route
    # forward must still produce correct answers.
    local i=0 rc
    while [ $SECONDS -lt $END ]; do
      rc=0
      $CLIENT "$CANU" submit run crc modulo --seed=$(((i % 6) + 1)) \
        --scale=0.0625 --retry=5 --socket="$WORK/s0.sock" \
        > /dev/null 2>> "$WORK/misroute.err" || rc=$?
      case $rc in
        0 | 75) ;;
        *) fail "misrouted submit exited $rc" ;;
      esac
      i=$((i + 1))
      sleep 0.05
    done
    echo "$i" > "$WORK/misroute.count"
  }

  END=$((SECONDS + DURATION))
  fleet_batch_loop &
  local batch=$!
  fleet_stream_loop &
  local stream=$!
  fleet_misroute_loop &
  local misroute=$!

  # Mid-soak shard loss: SIGKILL the last shard, drain its journal onto the
  # ring (must be lossless), prove the warm set still answers byte-identical
  # via failover, then restart the shard.
  sleep $((DURATION / 3))
  local victim=$((SHARDS - 1))
  kill -KILL "${SHARD_PIDS[$victim]}" 2> /dev/null || true
  wait "${SHARD_PIDS[$victim]}" 2> /dev/null || true
  "$CANU" drain "$WORK/s$victim.jrnl" --endpoints="$EPS" \
    > "$WORK/drain.out" 2>> "$WORK/drain.err" \
    || fail "drain of killed shard lost records: $(cat "$WORK/drain.out")"
  cat "$WORK/drain.out"
  local k
  for k in $(seq 1 6); do
    $CLIENT "$CANU" submit run crc modulo --seed="$k" --scale=0.0625 \
      --endpoints="$EPS" --retry=5 --meta-out="$WORK/replay.meta" \
      > "$WORK/replay.$k" 2>> "$WORK/replay.err" \
      || fail "post-kill replay seed=$k failed"
    cmp -s "$WORK/expect.$k" "$WORK/replay.$k" \
      || fail "post-kill replay seed=$k diverged from direct CLI"
    grep -q '"result_cache_hit": true' "$WORK/replay.meta" \
      || fail "post-kill replay seed=$k was not a warm hit"
  done
  echo "soak: shard s$victim killed, journal drained, warm set intact"
  start_shard "$victim"
  for k in $(seq 1 6); do
    $CLIENT "$CANU" submit run crc modulo --seed="$k" --scale=0.0625 \
      --endpoints="$EPS" --retry=5 > "$WORK/replay2.$k" \
      2>> "$WORK/replay.err" || fail "post-restart replay seed=$k failed"
    cmp -s "$WORK/expect.$k" "$WORK/replay2.$k" \
      || fail "post-restart replay seed=$k diverged"
  done
  echo "soak: shard s$victim restarted, replies still byte-identical"

  wait "$batch" "$stream" "$misroute"

  # Per-shard telemetry: labels present, classification invariant holds on
  # every live shard, and the route forward actually fired somewhere.
  python3 - "$WORK" "$SHARDS" "$CANU" << 'PYEOF' \
    || fail "fleet telemetry assertions"
import json
import subprocess
import sys

work, shards, canu = sys.argv[1], int(sys.argv[2]), sys.argv[3]
total_requests = 0
total_forwarded = 0
for i in range(shards):
    out = subprocess.run(
        [canu, "metrics", f"--socket={work}/s{i}.sock"],
        capture_output=True, text=True, timeout=60)
    assert out.returncode == 0, f"s{i} metrics failed: {out.stderr}"
    m = json.loads(out.stdout)
    assert m.get("shard") == f"s{i}", f"s{i}: bad shard label {m.get('shard')}"
    t = m["totals"]
    assert t["warm_hits"] + t["misses"] == t["requests"] - t["rejections"], \
        f"s{i} totals disagree: {t}"
    total_requests += t["requests"]
    prom = subprocess.run(
        [canu, "metrics", f"--socket={work}/s{i}.sock",
         "--format=prometheus"],
        capture_output=True, text=True, timeout=60)
    assert f'shard="s{i}"' in prom.stdout, f"s{i}: no prometheus shard label"
    status = subprocess.run(
        [canu, "status", f"--socket={work}/s{i}.sock"],
        capture_output=True, text=True, timeout=60)
    for line in status.stdout.splitlines():
        if line.startswith("forwarded"):
            total_forwarded += int(line.split()[-1])
assert total_requests > 0, "fleet served no requests"
assert total_forwarded > 0, "route forward never fired despite misrouting"
print(f"soak: fleet telemetry OK ({total_requests} requests,"
      f" {total_forwarded} forwarded)")
PYEOF

  for i in $(seq 0 $((SHARDS - 1))); do
    kill -TERM "${SHARD_PIDS[$i]}" 2> /dev/null || true
  done
  for i in $(seq 0 $((SHARDS - 1))); do
    wait "${SHARD_PIDS[$i]}" 2> /dev/null || true
  done
  SHARD_PIDS=()

  [ ! -e "$WORK/failed" ] || { cat "$WORK"/*.err >&2 || true; exit 1; }
  read -r BATCH_N < "$WORK/batch.count"
  read -r STREAM_N < "$WORK/stream.count"
  read -r MISROUTE_N < "$WORK/misroute.count"
  echo "soak: $BATCH_N fleet batch, $STREAM_N streamed grid," \
    "$MISROUTE_N misrouted submits"
  [ "$BATCH_N" -ge 1 ] && [ "$STREAM_N" -ge 1 ] && [ "$MISROUTE_N" -ge 1 ] || {
    echo "soak: suspiciously little fleet work completed" >&2
    exit 1
  }
  echo "soak: PASS ($SHARDS shards)"
  exit 0
}

# A client that does not return inside 120 s is hung; SIGKILL gives the
# distinctive exit 137, never confusable with canu's own deadline exit 124.
CLIENT="timeout --signal=KILL 120"

if [ "$SHARDS" -gt 1 ]; then
  fleet_soak
fi

"$CANU" serve --socket="$SOCK" --queue=8 \
  --cache-file="$WORK/results.jrnl" --metrics-out="$ROLLUP" \
  2> "$WORK/serve.log" &
SERVE_PID=$!
for _ in $(seq 1 100); do [ -S "$SOCK" ] && break; sleep 0.1; done
[ -S "$SOCK" ] || { echo "daemon never bound $SOCK" >&2; exit 1; }

END=$((SECONDS + DURATION))

batch_loop() {
  local i=0 rc
  while [ $SECONDS -lt $END ]; do
    rc=0
    $CLIENT "$CANU" submit evaluate crc indexing --scale=0.0625 \
      --seed=$(((i % 4) + 1)) --retry=5 --socket="$SOCK" \
      > /dev/null 2>> "$WORK/batch.err" || rc=$?
    case $rc in
      0 | 75) ;;  # overload past the retry budget is load shedding, not a bug
      *) fail "batch submit exited $rc" ;;
    esac
    i=$((i + 1))
  done
  echo "$i" > "$WORK/batch.count"
}

interactive_loop() {
  local i=0 rc verb
  while [ $SECONDS -lt $END ]; do
    for verb in version status; do
      rc=0
      $CLIENT "$CANU" submit "$verb" --retry=5 --socket="$SOCK" \
        > /dev/null 2>> "$WORK/interactive.err" || rc=$?
      [ "$rc" -eq 0 ] || fail "interactive $verb exited $rc"
    done
    i=$((i + 1))
    sleep 0.05
  done
  echo "$i" > "$WORK/interactive.count"
}

deadline_loop() {
  local i=0 timed_out=0 rc
  while [ $SECONDS -lt $END ]; do
    rc=0
    $CLIENT "$CANU" submit evaluate mibench all --scale=0.25 \
      --seed=$((i + 100)) --timeout-ms=40 --socket="$SOCK" \
      > /dev/null 2>> "$WORK/deadline.err" || rc=$?
    case $rc in
      124) timed_out=$((timed_out + 1)) ;;
      0 | 75) ;;  # cache hit beat the deadline / admission shed it
      *) fail "deadline submit exited $rc" ;;
    esac
    i=$((i + 1))
    sleep 0.2
  done
  echo "$i $timed_out" > "$WORK/deadline.count"
}

batch_loop &
BATCH=$!
interactive_loop &
INTERACTIVE=$!
deadline_loop &
DEADLINE=$!

# Mid-flight SIGHUP: the rollup must appear and parse while serving.
sleep $((DURATION / 2))
kill -HUP "$SERVE_PID"
for _ in $(seq 1 50); do [ -s "$ROLLUP" ] && break; sleep 0.1; done
python3 -m json.tool "$ROLLUP" > /dev/null || fail "SIGHUP rollup unparseable"

# Mid-soak live telemetry: the metrics verb must answer both formats while
# the daemon is under load, the JSON must show live traffic, and the
# Prometheus exposition must obey the text-format grammar.
$CLIENT "$CANU" metrics --socket="$SOCK" > "$WORK/metrics.json" \
  || fail "metrics verb (json) failed mid-soak"
$CLIENT "$CANU" metrics --socket="$SOCK" --format=prometheus \
  > "$WORK/metrics.prom" || fail "metrics verb (prometheus) failed mid-soak"
python3 - "$WORK/metrics.json" "$WORK/metrics.prom" << 'EOF' \
  || fail "mid-soak metrics assertions failed"
import json
import sys

with open(sys.argv[1]) as f:
    m = json.load(f)
totals = m["totals"]
# Classification invariant: every answered request is exactly one of
# warm hit / miss / rejection (monotonic totals, so this is exact).
assert totals["warm_hits"] + totals["misses"] == \
    totals["requests"] - totals["rejections"], f"totals disagree: {totals}"
assert m["windows"]["10s"]["rps"] > 0, "no traffic in the 10s window mid-soak"
for verb, stats in m["verbs"].items():
    t = stats["total_ms"]
    assert t["p99"] >= t["p50"] >= 0, f"{verb}: non-monotone quantiles {t}"

with open(sys.argv[2]) as f:
    prom_lines = f.read().splitlines()
samples = 0
for line in prom_lines:
    if not line or line.startswith("#"):
        continue
    name_labels, _, value = line.rpartition(" ")
    float(value)  # every sample value parses as a number
    assert name_labels.startswith("canud_"), f"bad metric name: {line}"
    samples += 1
assert samples > 10, f"suspiciously thin exposition ({samples} samples)"
rps = [line for line in prom_lines if line.startswith('canud_rps{window="10s"}')]
assert rps and float(rps[0].rpartition(" ")[2]) > 0, "prometheus rps_10s == 0"
print(f"soak: mid-soak metrics OK ({samples} prometheus samples,"
      f" {totals['requests']} requests so far)")
EOF

wait "$BATCH" "$INTERACTIVE" "$DEADLINE"

kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || fail "daemon exited nonzero"
SERVE_PID=

[ ! -e "$WORK/failed" ] || { cat "$WORK"/*.err >&2 || true; exit 1; }

read -r BATCH_N < "$WORK/batch.count"
read -r INTERACTIVE_N < "$WORK/interactive.count"
read -r DEADLINE_N DEADLINE_124 < "$WORK/deadline.count"
echo "soak: $BATCH_N batch, $INTERACTIVE_N interactive rounds," \
  "$DEADLINE_N deadline submits ($DEADLINE_124 timed out)"
[ "$BATCH_N" -ge 1 ] && [ "$INTERACTIVE_N" -ge 5 ] || {
  echo "soak: suspiciously little work completed" >&2
  exit 1
}

# Final rollup: written on drain, parseable, and interactive latency stayed
# bounded while batch evaluates saturated the queue.
python3 - "$ROLLUP" << 'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    rollup = json.load(f)
verbs = rollup["verbs"]
p99 = verbs.get("version", {}).get("p99_ms", 0.0)
assert p99 < 5000.0, f"interactive p99 {p99:.1f} ms: batch starved it"
assert rollup["admitted"] > 0, "rollup counted no admitted requests"
print(f"soak: interactive p99 {p99:.1f} ms,"
      f" admitted {rollup['admitted']},"
      f" timed_out {rollup['timed_out']},"
      f" cache hits {rollup['result_cache_hits']}")
EOF
echo "soak: PASS"
