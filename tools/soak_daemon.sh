#!/usr/bin/env bash
# Mixed-priority soak against a live canud: batch evaluates, interactive
# control-plane requests, and deliberately timed-out submits all hammer one
# daemon for a fixed window. Asserts that
#   - every client invocation returns (no hung requests: each is wrapped in
#     a hard `timeout` well above any legitimate latency),
#   - interactive requests stay fast even while batch work queues
#     (p99 bound read from the shutdown rollup),
#   - deadlines produce typed exit-124 answers, not stuck clients,
#   - SIGHUP produces a parseable metrics rollup mid-flight,
#   - the daemon drains cleanly on SIGTERM and writes the final rollup.
#
# Usage: tools/soak_daemon.sh [build-dir] [duration-seconds]
set -euo pipefail

BUILD_DIR=${1:-build}
DURATION=${2:-60}
CANU="$BUILD_DIR/tools/canu"
[ -x "$CANU" ] || { echo "no canu binary at $CANU" >&2; exit 2; }

WORK=$(mktemp -d /tmp/canu_soak_XXXXXX)
SOCK="$WORK/canud.sock"
ROLLUP="$WORK/rollup.json"
SERVE_PID=
cleanup() {
  [ -n "$SERVE_PID" ] && kill -KILL "$SERVE_PID" 2> /dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

"$CANU" serve --socket="$SOCK" --queue=8 \
  --cache-file="$WORK/results.jrnl" --metrics-out="$ROLLUP" \
  2> "$WORK/serve.log" &
SERVE_PID=$!
for _ in $(seq 1 100); do [ -S "$SOCK" ] && break; sleep 0.1; done
[ -S "$SOCK" ] || { echo "daemon never bound $SOCK" >&2; exit 1; }

END=$((SECONDS + DURATION))
# A client that does not return inside 120 s is hung; SIGKILL gives the
# distinctive exit 137, never confusable with canu's own deadline exit 124.
CLIENT="timeout --signal=KILL 120"

fail() { echo "soak: $*" >&2; touch "$WORK/failed"; }

batch_loop() {
  local i=0 rc
  while [ $SECONDS -lt $END ]; do
    rc=0
    $CLIENT "$CANU" submit evaluate crc indexing --scale=0.0625 \
      --seed=$(((i % 4) + 1)) --retry=5 --socket="$SOCK" \
      > /dev/null 2>> "$WORK/batch.err" || rc=$?
    case $rc in
      0 | 75) ;;  # overload past the retry budget is load shedding, not a bug
      *) fail "batch submit exited $rc" ;;
    esac
    i=$((i + 1))
  done
  echo "$i" > "$WORK/batch.count"
}

interactive_loop() {
  local i=0 rc verb
  while [ $SECONDS -lt $END ]; do
    for verb in version status; do
      rc=0
      $CLIENT "$CANU" submit "$verb" --retry=5 --socket="$SOCK" \
        > /dev/null 2>> "$WORK/interactive.err" || rc=$?
      [ "$rc" -eq 0 ] || fail "interactive $verb exited $rc"
    done
    i=$((i + 1))
    sleep 0.05
  done
  echo "$i" > "$WORK/interactive.count"
}

deadline_loop() {
  local i=0 timed_out=0 rc
  while [ $SECONDS -lt $END ]; do
    rc=0
    $CLIENT "$CANU" submit evaluate mibench all --scale=0.25 \
      --seed=$((i + 100)) --timeout-ms=40 --socket="$SOCK" \
      > /dev/null 2>> "$WORK/deadline.err" || rc=$?
    case $rc in
      124) timed_out=$((timed_out + 1)) ;;
      0 | 75) ;;  # cache hit beat the deadline / admission shed it
      *) fail "deadline submit exited $rc" ;;
    esac
    i=$((i + 1))
    sleep 0.2
  done
  echo "$i $timed_out" > "$WORK/deadline.count"
}

batch_loop &
BATCH=$!
interactive_loop &
INTERACTIVE=$!
deadline_loop &
DEADLINE=$!

# Mid-flight SIGHUP: the rollup must appear and parse while serving.
sleep $((DURATION / 2))
kill -HUP "$SERVE_PID"
for _ in $(seq 1 50); do [ -s "$ROLLUP" ] && break; sleep 0.1; done
python3 -m json.tool "$ROLLUP" > /dev/null || fail "SIGHUP rollup unparseable"

# Mid-soak live telemetry: the metrics verb must answer both formats while
# the daemon is under load, the JSON must show live traffic, and the
# Prometheus exposition must obey the text-format grammar.
$CLIENT "$CANU" metrics --socket="$SOCK" > "$WORK/metrics.json" \
  || fail "metrics verb (json) failed mid-soak"
$CLIENT "$CANU" metrics --socket="$SOCK" --format=prometheus \
  > "$WORK/metrics.prom" || fail "metrics verb (prometheus) failed mid-soak"
python3 - "$WORK/metrics.json" "$WORK/metrics.prom" << 'EOF' \
  || fail "mid-soak metrics assertions failed"
import json
import sys

with open(sys.argv[1]) as f:
    m = json.load(f)
totals = m["totals"]
# Classification invariant: every answered request is exactly one of
# warm hit / miss / rejection (monotonic totals, so this is exact).
assert totals["warm_hits"] + totals["misses"] == \
    totals["requests"] - totals["rejections"], f"totals disagree: {totals}"
assert m["windows"]["10s"]["rps"] > 0, "no traffic in the 10s window mid-soak"
for verb, stats in m["verbs"].items():
    t = stats["total_ms"]
    assert t["p99"] >= t["p50"] >= 0, f"{verb}: non-monotone quantiles {t}"

with open(sys.argv[2]) as f:
    prom_lines = f.read().splitlines()
samples = 0
for line in prom_lines:
    if not line or line.startswith("#"):
        continue
    name_labels, _, value = line.rpartition(" ")
    float(value)  # every sample value parses as a number
    assert name_labels.startswith("canud_"), f"bad metric name: {line}"
    samples += 1
assert samples > 10, f"suspiciously thin exposition ({samples} samples)"
rps = [line for line in prom_lines if line.startswith('canud_rps{window="10s"}')]
assert rps and float(rps[0].rpartition(" ")[2]) > 0, "prometheus rps_10s == 0"
print(f"soak: mid-soak metrics OK ({samples} prometheus samples,"
      f" {totals['requests']} requests so far)")
EOF

wait "$BATCH" "$INTERACTIVE" "$DEADLINE"

kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || fail "daemon exited nonzero"
SERVE_PID=

[ ! -e "$WORK/failed" ] || { cat "$WORK"/*.err >&2 || true; exit 1; }

read -r BATCH_N < "$WORK/batch.count"
read -r INTERACTIVE_N < "$WORK/interactive.count"
read -r DEADLINE_N DEADLINE_124 < "$WORK/deadline.count"
echo "soak: $BATCH_N batch, $INTERACTIVE_N interactive rounds," \
  "$DEADLINE_N deadline submits ($DEADLINE_124 timed out)"
[ "$BATCH_N" -ge 1 ] && [ "$INTERACTIVE_N" -ge 5 ] || {
  echo "soak: suspiciously little work completed" >&2
  exit 1
}

# Final rollup: written on drain, parseable, and interactive latency stayed
# bounded while batch evaluates saturated the queue.
python3 - "$ROLLUP" << 'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    rollup = json.load(f)
verbs = rollup["verbs"]
p99 = verbs.get("version", {}).get("p99_ms", 0.0)
assert p99 < 5000.0, f"interactive p99 {p99:.1f} ms: batch starved it"
assert rollup["admitted"] > 0, "rollup counted no admitted requests"
print(f"soak: interactive p99 {p99:.1f} ms,"
      f" admitted {rollup['admitted']},"
      f" timed_out {rollup['timed_out']},"
      f" cache hits {rollup['result_cache_hits']}")
EOF
echo "soak: PASS"
