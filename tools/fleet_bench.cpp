// fleet_bench — in-process warm-hit load generator for BENCH_PR9 rows.
//
// Usage: fleet_bench <seconds> <threads> <endpoints-csv> [distinct-keys]
//
// Primes `distinct-keys` cacheable requests through the fleet (consistent-
// hash routed, like `canu submit --endpoints`), then runs `threads` workers
// for `seconds`, each submitting warm-hit requests round-robin over the key
// set, and prints one JSON line with the aggregate request rate. Running
// the load in threads (not one `canu submit` process per request) keeps
// fork/exec out of the measurement — the number prices the daemons'
// protocol + cache path, which is what sharding is supposed to scale.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "fleet/endpoints.hpp"
#include "fleet/fleet_client.hpp"
#include "svc/protocol.hpp"
#include "util/error.hpp"

using namespace canu;

namespace {

svc::Request list_request(std::uint64_t seed) {
  svc::Request req;
  req.verb = "list";
  req.params.seed = seed;  // varies the canonical key, not the output
  return req;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: fleet_bench <seconds> <threads> <endpoints-csv> "
                 "[distinct-keys]\n");
    return 2;
  }
  const double seconds = std::atof(argv[1]);
  const unsigned threads = static_cast<unsigned>(std::atoi(argv[2]));
  const std::uint64_t keys = argc > 4 ? std::strtoull(argv[4], nullptr, 10)
                                      : 64;
  if (seconds <= 0 || threads == 0 || keys == 0) {
    std::fprintf(stderr, "fleet_bench: bad arguments\n");
    return 2;
  }

  try {
    const fleet::FleetClient fc(fleet::parse_endpoint_list(argv[3]));
    for (std::uint64_t k = 0; k < keys; ++k) {
      const svc::Response resp = fc.call(list_request(k));
      if (resp.exit_code != 0) {
        std::fprintf(stderr, "fleet_bench: prime failed: %s\n",
                     resp.error.c_str());
        return 1;
      }
    }

    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> errors{0};
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(seconds);
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        std::uint64_t i = t;  // desynchronize the round-robin start points
        while (std::chrono::steady_clock::now() < deadline) {
          try {
            const svc::Response resp = fc.call(list_request(i++ % keys));
            if (resp.exit_code == 0 && resp.result_cache_hit) {
              ++completed;
            } else {
              ++errors;
            }
          } catch (const Error&) {
            ++errors;
          }
        }
      });
    }
    for (std::thread& w : workers) w.join();

    const std::uint64_t n = completed.load();
    std::printf(
        "{\"requests\": %llu, \"errors\": %llu, \"seconds\": %.3f, "
        "\"warm_rps\": %.1f}\n",
        static_cast<unsigned long long>(n),
        static_cast<unsigned long long>(errors.load()), seconds,
        static_cast<double>(n) / seconds);
    return errors.load() == 0 ? 0 : 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "fleet_bench: %s\n", e.what());
    return 1;
  }
}
