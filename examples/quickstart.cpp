// Quickstart: generate a workload trace, run it through the paper's cache
// configuration under two different schemes, and print the comparison.
//
//   $ ./examples/quickstart [workload]
//
// This exercises the core public API end to end: workload generation,
// scheme construction, the trace runner, and the uniformity analysis.
#include <iostream>

#include "core/scheme.hpp"
#include "sim/runner.hpp"
#include "util/table.hpp"
#include "workloads/workload.hpp"

int main(int argc, char** argv) {
  using namespace canu;

  const std::string name = argc > 1 ? argv[1] : "fft";
  if (!find_workload(name)) {
    std::cerr << "unknown workload '" << name << "'. Available:\n";
    for (const auto& w : workload_names()) std::cerr << "  " << w << "\n";
    return 1;
  }

  std::cout << "Generating trace for '" << name << "'...\n";
  const Trace trace = generate_workload(name);
  std::cout << "  " << trace.size() << " references\n\n";

  const CacheGeometry l1 = CacheGeometry::paper_l1();
  const std::vector<SchemeSpec> schemes = {
      SchemeSpec::baseline(),
      SchemeSpec::indexing(IndexScheme::kXor),
      SchemeSpec::indexing(IndexScheme::kOddMultiplier),
      SchemeSpec::column_associative(),
      SchemeSpec::adaptive_cache(),
      SchemeSpec::b_cache(),
  };

  TextTable table;
  table.set_header({"scheme", "miss rate %", "AMAT (cycles)", "FMS sets",
                    "LAS sets", "miss kurtosis"});
  for (const SchemeSpec& spec : schemes) {
    auto model = build_l1_model(spec, l1, &trace);
    const RunResult r = run_trace(*model, trace);
    table.add_row({spec.label(), TextTable::num(100.0 * r.miss_rate(), 3),
                   TextTable::num(r.amat, 2),
                   std::to_string(r.uniformity.fms),
                   std::to_string(r.uniformity.las),
                   TextTable::num(r.uniformity.miss_moments.kurtosis, 1)});
  }
  table.print(std::cout);

  std::cout << "\nL1: 32 KB direct-mapped, 32 B lines (1024 sets); "
               "L2: 256 KB 8-way LRU.\n"
               "FMS = sets with >= 2x average misses; LAS = sets with < 1/2 "
               "average accesses.\n";
  return 0;
}
