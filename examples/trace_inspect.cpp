// trace_inspect: generate, save, load and summarize workload traces — the
// trace-infrastructure layer as a command-line tool.
//
//   $ ./examples/trace_inspect fft                 # summarize
//   $ ./examples/trace_inspect fft save fft.trc    # write binary trace
//   $ ./examples/trace_inspect load fft.trc        # load + summarize
#include <iostream>

#include "trace/trace_io.hpp"
#include "util/error.hpp"
#include "trace/trace_stats.hpp"
#include "util/table.hpp"
#include "workloads/workload.hpp"

namespace {

void summarize(const canu::Trace& trace) {
  using namespace canu;
  const TraceStats s = compute_trace_stats(trace, 32);
  std::cout << "trace '" << trace.name() << "': " << s.total
            << " references\n"
            << "  reads " << s.reads << ", writes " << s.writes
            << ", fetches " << s.fetches << "\n"
            << "  unique addresses " << s.unique_addresses
            << ", unique 32B lines " << s.unique_lines << " (footprint "
            << s.footprint_bytes / 1024 << " KiB)\n"
            << "  address range [0x" << std::hex << s.min_addr << ", 0x"
            << s.max_addr << std::dec << "]\n"
            << "  dominant strides:";
  for (const auto& peak : s.top_strides) {
    std::cout << " " << peak.stride << "(x" << peak.count << ")";
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace canu;
  if (argc < 2) {
    std::cout << "usage:\n  trace_inspect <workload>\n"
                 "  trace_inspect <workload> save <file>\n"
                 "  trace_inspect load <file>\n\nworkloads:\n";
    for (const WorkloadInfo& w : all_workloads()) {
      std::cout << "  " << w.name << " [" << w.suite << "] — "
                << w.description << "\n";
    }
    return 0;
  }

  try {
    const std::string first = argv[1];
    if (first == "load") {
      if (argc < 3) {
        std::cerr << "load requires a file\n";
        return 1;
      }
      summarize(load_trace(argv[2]));
      return 0;
    }
    if (!find_workload(first)) {
      std::cerr << "unknown workload '" << first << "'\n";
      return 1;
    }
    const Trace trace = generate_workload(first);
    summarize(trace);
    if (argc >= 4 && std::string(argv[2]) == "save") {
      save_trace(trace, argv[3]);
      std::cout << "saved to " << argv[3] << "\n";
    }
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
