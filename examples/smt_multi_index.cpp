// smt_multi_index: co-schedule two (or more) workloads on an SMT-style
// shared L1 and compare shared-modulo indexing against per-thread
// odd-multiplier indexing and the partitioned adaptive organization —
// the experiments behind the paper's Figures 13 and 14, as a tool.
//
//   $ ./examples/smt_multi_index fft susan
//   $ ./examples/smt_multi_index qsort basicmath patricia susan
#include <iostream>
#include <vector>

#include "cache/set_assoc_cache.hpp"
#include "indexing/modulo.hpp"
#include "indexing/odd_multiplier.hpp"
#include "mt/interleave.hpp"
#include "mt/partitioned_adaptive.hpp"
#include "mt/smt_cache.hpp"
#include "sim/amat.hpp"
#include "util/bitops.hpp"
#include "util/table.hpp"
#include "workloads/workload.hpp"

int main(int argc, char** argv) {
  using namespace canu;

  std::vector<std::string> mix;
  for (int i = 1; i < argc; ++i) mix.push_back(argv[i]);
  if (mix.empty()) mix = {"fft", "susan"};
  for (const std::string& w : mix) {
    if (!find_workload(w)) {
      std::cerr << "unknown workload '" << w << "'\n";
      return 1;
    }
  }

  // Per-thread traces in disjoint address windows, round-robin interleaved.
  std::vector<Trace> traces;
  for (std::size_t t = 0; t < mix.size(); ++t) {
    WorkloadParams p;
    p.address_base = 0x1000'0000ULL + t * 0x4000'0000ULL;
    traces.push_back(generate_workload(mix[t], p));
    std::cout << "thread " << t << ": " << mix[t] << " ("
              << traces.back().size() << " refs)\n";
  }
  const ThreadedTrace stream = interleave_round_robin(traces);
  const CacheGeometry l1 = CacheGeometry::paper_l1();

  TextTable table;
  table.set_header({"configuration", "L1 miss %", "AMAT"});

  // 1. Shared cache, every thread uses conventional modulo indexing.
  std::vector<IndexFunctionPtr> modulo_fns(
      mix.size(), std::make_shared<ModuloIndex>(l1.sets(), l1.offset_bits()));
  SmtSharedCache shared_modulo(l1, modulo_fns);
  const SmtRunResult base =
      run_smt(shared_modulo, stream, CacheGeometry::paper_l2());
  table.add_row({"shared, all modulo",
                 TextTable::num(100.0 * base.l1.miss_rate(), 3),
                 TextTable::num(base.amat, 3)});

  // 2. Shared cache, per-thread odd multipliers (Figure 13).
  std::vector<IndexFunctionPtr> odd_fns;
  for (std::size_t t = 0; t < mix.size(); ++t) {
    odd_fns.push_back(std::make_shared<OddMultiplierIndex>(
        l1.sets(), l1.offset_bits(),
        OddMultiplierIndex::kRecommendedMultipliers
            [t % OddMultiplierIndex::kRecommendedMultipliers.size()]));
  }
  SmtSharedCache multi(l1, odd_fns);
  const SmtRunResult multi_res =
      run_smt(multi, stream, CacheGeometry::paper_l2());
  table.add_row({"shared, per-thread odd multipliers",
                 TextTable::num(100.0 * multi_res.l1.miss_rate(), 3),
                 TextTable::num(multi_res.amat, 3)});

  // 3. Statically partitioned direct-mapped cache.
  const auto threads = static_cast<std::uint32_t>(next_pow2(mix.size()));
  PartitionedDirectCache part_direct(l1, threads);
  {
    SetAssocCache l2(CacheGeometry::paper_l2());
    for (const ThreadedRef& r : stream) {
      if (!part_direct.access(r.tid, r.ref).hit) l2.access(r.ref.addr);
    }
    const double amat = amat_conventional(
        part_direct.stats().miss_rate(), miss_penalty_from_l2(l2.stats()));
    table.add_row({"partitioned direct-mapped",
                   TextTable::num(100.0 * part_direct.stats().miss_rate(), 3),
                   TextTable::num(amat, 3)});
  }

  // 4. Partitioned adaptive (Figure 14).
  PartitionedAdaptiveCache part_adaptive(l1, threads);
  {
    SetAssocCache l2(CacheGeometry::paper_l2());
    for (const ThreadedRef& r : stream) {
      if (!part_adaptive.access(r.tid, r.ref).hit) l2.access(r.ref.addr);
    }
    const double amat = amat_adaptive(
        part_adaptive.stats().primary_hit_fraction(),
        part_adaptive.stats().miss_rate(), miss_penalty_from_l2(l2.stats()));
    table.add_row(
        {"partitioned adaptive (SHT/OUT spill)",
         TextTable::num(100.0 * part_adaptive.stats().miss_rate(), 3),
         TextTable::num(amat, 3)});
  }

  std::cout << "\n";
  table.print(std::cout);

  std::cout << "\nPer-thread miss rates (shared modulo vs per-thread odd):\n";
  for (std::size_t t = 0; t < mix.size(); ++t) {
    std::cout << "  " << mix[t] << ": "
              << TextTable::num(
                     100.0 * base.per_thread[t].miss_rate(), 3)
              << "% -> "
              << TextTable::num(
                     100.0 * multi_res.per_thread[t].miss_rate(), 3)
              << "%\n";
  }
  return 0;
}
