// uniformity_report: full per-set uniformity analysis for one workload
// under a chosen scheme — the measurement machinery behind the paper's
// Figures 1 and 9-12, exposed as a tool.
//
//   $ ./examples/uniformity_report fft xor
//   $ ./examples/uniformity_report sjeng column_assoc
#include <algorithm>
#include <iostream>

#include "core/scheme.hpp"
#include "sim/runner.hpp"
#include "util/table.hpp"
#include "workloads/workload.hpp"

namespace {

canu::SchemeSpec scheme_from_arg(const std::string& arg) {
  using namespace canu;
  if (arg == "column_assoc") return SchemeSpec::column_associative();
  if (arg == "adaptive") return SchemeSpec::adaptive_cache();
  if (arg == "b_cache") return SchemeSpec::b_cache();
  if (arg == "victim") return SchemeSpec::victim_cache();
  if (arg == "2way") return SchemeSpec::set_assoc(2);
  if (arg == "4way") return SchemeSpec::set_assoc(4);
  if (arg == "8way") return SchemeSpec::set_assoc(8);
  return SchemeSpec::indexing(parse_index_scheme(arg));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace canu;
  const std::string workload = argc > 1 ? argv[1] : "fft";
  const std::string scheme_name = argc > 2 ? argv[2] : "modulo";

  if (!find_workload(workload)) {
    std::cerr << "unknown workload '" << workload << "'\n";
    return 1;
  }
  SchemeSpec spec;
  try {
    spec = scheme_from_arg(scheme_name);
  } catch (const Error&) {
    std::cerr << "unknown scheme '" << scheme_name
              << "' (try: modulo xor odd_multiplier prime_modulo givargis "
                 "givargis_xor column_assoc adaptive b_cache victim 2way "
                 "4way 8way)\n";
    return 1;
  }

  const Trace trace = generate_workload(workload);
  auto model = build_l1_model(spec, CacheGeometry::paper_l1(), &trace);
  const RunResult r = run_trace(*model, trace);
  const UniformityReport& u = r.uniformity;

  std::cout << "Workload " << workload << " under " << spec.label() << ": "
            << trace.size() << " references\n\n";

  TextTable table;
  table.set_header({"metric", "accesses", "hits", "misses"});
  table.add_row({"mean/set", TextTable::num(u.avg_accesses, 1),
                 TextTable::num(u.avg_hits, 1), TextTable::num(u.avg_misses, 1)});
  table.add_row({"std dev", TextTable::num(u.access_moments.stddev, 1),
                 TextTable::num(u.hit_moments.stddev, 1),
                 TextTable::num(u.miss_moments.stddev, 1)});
  table.add_row({"skewness", TextTable::num(u.access_moments.skewness, 2),
                 TextTable::num(u.hit_moments.skewness, 2),
                 TextTable::num(u.miss_moments.skewness, 2)});
  table.add_row({"kurtosis", TextTable::num(u.access_moments.kurtosis, 2),
                 TextTable::num(u.hit_moments.kurtosis, 2),
                 TextTable::num(u.miss_moments.kurtosis, 2)});
  table.print(std::cout);

  std::cout << "\nZhang set classification (paper §IV.C):\n"
            << "  FHS (>= 2x avg hits):    " << u.fhs << " sets ("
            << TextTable::num(100.0 * u.fhs_fraction(), 2) << "%)\n"
            << "  FMS (>= 2x avg misses):  " << u.fms << " sets ("
            << TextTable::num(100.0 * u.fms_fraction(), 2) << "%)\n"
            << "  LAS (< 1/2 avg accesses): " << u.las << " sets ("
            << TextTable::num(100.0 * u.las_fraction(), 2) << "%)\n"
            << "\nFigure-1 style summary:\n"
            << "  sets below half the average accesses: "
            << TextTable::num(100.0 * u.frac_under_half, 2) << "%\n"
            << "  sets above twice the average accesses: "
            << TextTable::num(100.0 * u.frac_over_twice, 3) << "%\n"
            << "\nMiss rate " << TextTable::num(100.0 * r.miss_rate(), 3)
            << "%, AMAT " << TextTable::num(r.amat, 3) << " cycles\n";

  // Top-8 hottest sets by misses.
  const auto misses = extract_counts(model->set_stats(), SetCounter::kMisses);
  std::vector<std::size_t> order(misses.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::partial_sort(order.begin(), order.begin() + 8, order.end(),
                    [&](std::size_t a, std::size_t b) {
                      return misses[a] > misses[b];
                    });
  std::cout << "\nHottest sets by misses:";
  for (std::size_t i = 0; i < 8 && i < order.size(); ++i) {
    std::cout << " " << order[i] << "(" << misses[order[i]] << ")";
  }
  std::cout << "\n";
  return 0;
}
