// scheme_advisor: the paper's Figure 5 proposal as a tool — profile an
// application offline and pick the indexing scheme / cache organization
// that minimizes its misses, falling back to conventional indexing when
// nothing helps.
//
//   $ ./examples/scheme_advisor            # advise on every MiBench program
//   $ ./examples/scheme_advisor patricia   # advise on one workload
#include <iostream>

#include "core/advisor.hpp"
#include "util/table.hpp"
#include "workloads/workload.hpp"

namespace {

void advise_one(const canu::Advisor& advisor, const std::string& name) {
  using namespace canu;
  const AdvisorReport rep = advisor.advise_workload(name);
  std::cout << name << " (baseline miss rate "
            << TextTable::num(100.0 * rep.baseline.miss_rate(), 3) << "%):\n";
  TextTable table;
  table.set_header({"rank", "scheme", "miss rate %", "AMAT", "miss red. %"});
  int rank = 1;
  for (const AdvisorChoice& c : rep.ranked) {
    table.add_row({std::to_string(rank++), c.scheme.label(),
                   TextTable::num(100.0 * c.result.miss_rate(), 3),
                   TextTable::num(c.result.amat, 3),
                   TextTable::num(c.miss_reduction_pct, 2)});
  }
  table.print(std::cout);
  if (rep.keep_conventional()) {
    std::cout << "=> recommendation: keep conventional modulo indexing\n\n";
  } else {
    std::cout << "=> recommendation: " << rep.best().scheme.label() << " ("
              << TextTable::num(rep.best().miss_reduction_pct, 2)
              << "% fewer misses)\n\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace canu;
  Advisor advisor;

  if (argc > 1) {
    const std::string name = argv[1];
    if (!find_workload(name)) {
      std::cerr << "unknown workload '" << name << "'\n";
      return 1;
    }
    advise_one(advisor, name);
    return 0;
  }

  std::cout << "Per-application scheme selection (paper Figure 5) over "
               "MiBench:\n\n";
  TextTable summary;
  summary.set_header({"benchmark", "best scheme", "miss red. %"});
  for (const std::string& name : paper_mibench_set()) {
    const AdvisorReport rep = advisor.advise_workload(name);
    summary.add_row({name,
                     rep.keep_conventional() ? "modulo (keep)"
                                             : rep.best().scheme.label(),
                     TextTable::num(rep.best().miss_reduction_pct, 2)});
  }
  summary.print(std::cout);
  std::cout << "\nNote how the winning scheme differs per application — the "
               "paper's core observation.\n";
  return 0;
}
